//! A flow-aware lint for the repo's persistence-ordering and concurrency
//! disciplines — the invariants the compiler cannot see but Algorithms 1–7
//! (and the optimistic read path) depend on.
//!
//! The build environment has no crates.io mirror, so there is no `syn`;
//! the linter is a careful line-level lexer instead ([`lexer`]), with
//! function extents and impl qualifiers recovered by brace tracking
//! ([`structure`]) and a conservatively name-resolved workspace call
//! graph on top ([`graph`]). Each rule works on the resulting views. The
//! rules are tuned so the real tree lints clean and every seeded fixture
//! violation fires (see `tests/selftest.rs`).
//!
//! # Rules
//!
//! * **R1 `persist-coverage`** — every `PmemPool::write` /
//!   `write_bytes` / `write_zeros` / `write_u64_atomic` call site in
//!   non-test source must be *covered*: a `persist`-family call follows
//!   within the same function, **or** (v2, interprocedural) every
//!   non-test caller of the enclosing function persists after the call —
//!   checked transitively to a bounded depth, conservative when the
//!   function's address is taken or a caller cannot be resolved.
//!   Remaining genuinely deferred sites carry a
//!   `// pmlint: deferred-persist(<reason>)` waiver. Test code is exempt:
//!   crash-simulation tests write without persisting *on purpose*, and
//!   the `pm-check` runtime tracker covers them instead.
//! * **R2 `safety-comment`** — every `unsafe {` block and `unsafe impl`
//!   must be annotated with a `// SAFETY:` comment on the same line or in
//!   the comment block immediately above. `unsafe fn` declarations are
//!   exempt (they carry `# Safety` docs).
//! * **R3 `relaxed-ordering`** — `Ordering::Relaxed` on seqlock-version
//!   or migration-counter atomics is forbidden outside the audited
//!   fence-paired helpers in `dir.rs`/`optimistic.rs`
//!   (`validate`, `probe_raw`, `snapshot_bucket_raw`, `help_migrate`).
//!   Waiver: `// pmlint: relaxed-ok(<reason>)`.
//! * **R4 `ptr-cache`** — in a function that arms the persist fuse and
//!   simulates a crash, a `PmPtr` read from PM *before* the crash must
//!   not be used after it: the crash may have reverted the pointer, so
//!   the cached copy dangles. Waiver: `// pmlint: ptr-cache-ok(<reason>)`.
//! * **R5 `lock-order`** — lock acquisitions, propagated through the
//!   call graph, must respect the canonical [`locks::LOCK_ORDER`]
//!   hierarchy (see `locks`). `try_*` edges are exempt but reported.
//!   Waiver: `// pmlint: lock-order-ok(<reason>)`.
//! * **R6 `fence-pairing`** — Release-side stores on guarded
//!   seqlock/migration atomics need an Acquire-side load of the same
//!   field in the same module. Waiver: `// pmlint: fence-ok(<reason>)`.
//! * **R7 `epoch-escape`** — (v3, guard-dataflow; see [`guards`]) a
//!   pointer derived from PM under an EBR guard must not be returned,
//!   stored to a field, `.store()`-published, or sent to another thread
//!   past the guard's hold range.
//!   Waiver: `// pmlint: epoch-escape-ok(<reason>)`.
//! * **R8 `seqlock-purity`** — (v3) an optimistic read section between a
//!   version load and its last use must be side-effect-free (no atomic
//!   writes, field assignment, allocation, or lock acquisition — direct
//!   or via resolved callees) and every exit path must revalidate.
//!   Waiver: `// pmlint: seqlock-ok(<reason>)`.
//! * **R9 `durable-ack`** — (v3; `crates/server` + `crates/pm/group.rs`
//!   only) a response frame must not be acked before a
//!   `complete`/`flush_batches`/persist covers its deferred-persist
//!   sequence; `complete()` fuse failures must nack and `flush_batches`
//!   ok-counts must be consumed. Waiver: `// pmlint: ack-ok(<reason>)`.
//! * **R10 `guarded-by`** — (v4, lock-set; see [`racer`]) accesses to
//!   shared fields of the registered concurrent types must happen with a
//!   covering lock from the declarative [`racer`] `GUARDED_BY` table
//!   held — directly, via a guard-typed parameter, or in every non-test
//!   caller (bounded-depth call-graph walk). Lock-wrapped fields may only
//!   be touched through their lock methods, and stash-bucket write locks
//!   require a still-held home-bucket guard.
//!   Waiver: `// pmlint: guarded-ok(<reason>)`.
//! * **R11 `atomic-protocol`** — (v4) every atomic field in the
//!   workspace declares a protocol class (`counter-relaxed-ok`,
//!   `release-publish`, `seqlock-version`, `sticky-flag`, `seqcst-sync`)
//!   in the [`racer`] `ATOMIC_PROTOCOLS` table; each load/store/RMW site
//!   must meet its class's minimum ordering, and an *undeclared* atomic
//!   field declaration is itself a finding.
//!   Waiver: `// pmlint: atomic-ok(<reason>)`.
//!
//! Waived findings are not silently dropped: they are collected in
//! [`Report::waived`] so CI can enforce a no-new-waivers budget
//! (`pmlint --max-waivers N`, exit code 2 when exceeded). Declaration
//! tables additionally self-audit: [`Report::liveness`] counts matched
//! sites per table entry, and the CLI / workspace selftest fail when any
//! entry matches zero sites (a rename must retune the table, not
//! silently blind a rule).

pub mod graph;
pub mod guards;
pub mod lexer;
pub mod locks;
pub mod racer;
pub mod structure;

use graph::{FileLex, FnId, Workspace};
use lexer::{annotated, contains_word, method_calls, Line};
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Audited seqlock/migration helpers allowed to use `Ordering::Relaxed`
/// (each pairs the load with an `Acquire` fence or is a pure stat).
pub(crate) const RELAXED_ALLOWLIST_FNS: &[&str] = &[
    "validate",
    "probe_raw",
    "snapshot_bucket_raw",
    "help_migrate",
];

/// Files whose allowlisted helpers may use `Relaxed` on guarded atomics.
pub(crate) const RELAXED_ALLOWLIST_FILES: &[&str] = &["dir.rs", "optimistic.rs"];

/// Calls that read a `PmPtr` out of PM (rule R4's cache sources).
const PMPTR_READS: &[&str] = &["leaf_read_pvalue(", "read::<PmPtr>", "read_pvalue("];

/// Max caller-chain depth for interprocedural coverage walks (R1 persist
/// coverage and R10 caller-held lock propagation).
pub(crate) const CALLER_DEPTH: usize = 4;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Rule output: hard violations plus findings suppressed by a waiver
/// comment (tracked so CI can budget them).
#[derive(Default)]
pub struct Findings {
    pub violations: Vec<Violation>,
    pub waived: Vec<Violation>,
}

/// Route a finding to `violations` or, when the waiver `marker` annotates
/// the site, to `waived`.
pub(crate) fn push_finding(
    out: &mut Findings,
    lines: &[Line],
    line: usize,
    marker: &str,
    v: Violation,
) {
    if annotated(lines, line, marker) {
        out.waived.push(v);
    } else {
        out.violations.push(v);
    }
}

/// One declaration-table liveness row: how many workspace sites matched
/// a pattern/declaration. A row with `hits == 0` means the table entry
/// is dead — usually a rename silently blinded the rule.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// The declaration table the row belongs to (e.g. `ACQ_PATTERNS`).
    pub table: &'static str,
    /// Human-readable entry key.
    pub key: String,
    /// Matched sites (or declaration lines) in the analyzed sources.
    pub hits: usize,
}

/// Full analysis result for a set of sources.
pub struct Report {
    /// Files scanned.
    pub files: usize,
    pub violations: Vec<Violation>,
    pub waived: Vec<Violation>,
    /// Observed blocking lock-order edges (all rank-legal unless also in
    /// `violations`).
    pub lock_edges: Vec<locks::LockEdge>,
    /// Observed `try_*` edges: deadlock-exempt, reported for audit.
    pub try_edges: Vec<locks::LockEdge>,
    /// Per-declaration-table-entry match counts. Only meaningful for
    /// whole-workspace runs — enforced by the CLI and the workspace
    /// selftest, never by [`analyze_sources`] itself (single-file
    /// fixture lints legitimately miss most patterns).
    pub liveness: Vec<Liveness>,
}

/// R1: persist coverage of PM write call sites (non-test code only),
/// interprocedural via the call graph.
fn rule_persist_coverage(ws: &Workspace, out: &mut Findings) {
    for (fi, f) in ws.files.iter().enumerate() {
        // Test code is exempt: crash tests omit persists deliberately, and
        // the pm-check runtime tracker owns that territory.
        if f.is_test_path() {
            continue;
        }
        for (li, line) in f.lines.iter().enumerate() {
            let lineno = li + 1;
            if f.st.in_test_mod[lineno] {
                continue;
            }
            let code = &line.code;
            let mut sites: Vec<usize> = Vec::new();
            for name in ["write_bytes", "write_zeros", "write_u64_atomic"] {
                sites.extend(method_calls(code, name));
            }
            // `.write(` only with a non-empty argument list — `.write()`
            // is a lock acquire, not a PM store.
            for after in method_calls(code, "write") {
                let rest = code[after..].trim_start();
                if code[..after].ends_with(".write(") && !rest.starts_with(')') {
                    sites.push(after);
                }
            }
            if sites.is_empty() {
                continue;
            }
            let Some(fn_idx) = f.st.fn_idx_at(lineno) else {
                push_finding(
                    out,
                    &f.lines,
                    lineno,
                    "pmlint: deferred-persist(",
                    Violation {
                        file: f.path.clone(),
                        line: lineno,
                        rule: "persist-coverage",
                        msg: "PM write outside any function?".into(),
                    },
                );
                continue;
            };
            let span = &f.st.fns[fn_idx];
            // Covered if a persist-family token appears later on this line
            // or on any following line of the same function…
            let first_site = *sites.iter().min().unwrap();
            let mut covered = code[first_site..].contains("persist");
            if !covered {
                for l in f.lines.iter().take(span.end).skip(lineno) {
                    if l.code.contains("persist") {
                        covered = true;
                        break;
                    }
                }
            }
            // …or (v2) if every non-test caller persists after the call.
            if !covered {
                let mut path = HashSet::new();
                covered = callers_persist(
                    ws,
                    FnId {
                        file: fi,
                        idx: fn_idx,
                    },
                    0,
                    &mut path,
                );
            }
            if !covered {
                let v = Violation {
                    file: f.path.clone(),
                    line: lineno,
                    rule: "persist-coverage",
                    msg: format!(
                        "PM write in `{}` has no covering persist later in the \
                         function and not every caller persists after calling \
                         it; persist it or waive with \
                         `// pmlint: deferred-persist(<reason>)`",
                        span.name
                    ),
                };
                push_finding(out, &f.lines, lineno, "pmlint: deferred-persist(", v);
            }
        }
    }
}

/// True when `target` has at least one non-test caller and *every*
/// non-test caller persists after its call site (lexically, or — bounded
/// by depth — transitively through its own callers). Conservative on
/// address-taken functions, unresolvable callers, module-scope call
/// sites, and recursion (`path` holds the active chain).
fn callers_persist(ws: &Workspace, target: FnId, depth: usize, path: &mut HashSet<FnId>) -> bool {
    if depth >= CALLER_DEPTH || !path.insert(target) {
        return false;
    }
    let result = (|| {
        let name = &ws.span(target).name;
        // A function whose address escapes may have callers the graph
        // cannot see.
        if ws.address_taken(name) {
            return false;
        }
        let Some(call_idxs) = ws.callers.get(&target) else {
            return false;
        };
        let mut real_callers = 0usize;
        for &ci in call_idxs {
            let c = &ws.calls[ci];
            let cf = &ws.files[c.file];
            // Test callers are exempt territory (see R1 header).
            if cf.is_test_line(c.line) {
                continue;
            }
            // Self-recursion neither helps nor hurts coverage.
            if c.caller == Some(target) {
                continue;
            }
            real_callers += 1;
            let Some(caller) = c.caller else {
                // Module-scope call site: no function to persist in.
                return false;
            };
            let cspan = ws.span(caller);
            // The call line's tail, then the rest of the caller.
            let call_line_code = &cf.lines[c.line - 1].code;
            let tail_from = call_line_code
                .char_indices()
                .nth(c.col)
                .map(|(b, _)| b)
                .unwrap_or(call_line_code.len());
            let mut ok = call_line_code[tail_from..].contains("persist");
            if !ok {
                for l in cf.lines.iter().take(cspan.end).skip(c.line) {
                    if l.code.contains("persist") {
                        ok = true;
                        break;
                    }
                }
            }
            if !ok {
                ok = callers_persist(ws, caller, depth + 1, path);
            }
            if !ok {
                return false;
            }
        }
        real_callers > 0
    })();
    path.remove(&target);
    result
}

/// R2: SAFETY comments on `unsafe` blocks and impls.
fn rule_safety_comments(f: &FileLex, out: &mut Findings) {
    for (li, line) in f.lines.iter().enumerate() {
        let lineno = li + 1;
        let code = &line.code;
        if !contains_word(code, "unsafe") {
            continue;
        }
        // Classify the token's context from what follows it.
        let pos = code.find("unsafe").unwrap();
        let after = code[pos + "unsafe".len()..].trim_start();
        let kind = if after.starts_with("fn") || after.starts_with("trait") {
            // `unsafe fn` / `unsafe trait`: contract documented by
            // `# Safety` rustdoc, not a block comment.
            continue;
        } else if after.starts_with("impl") {
            "unsafe impl"
        } else {
            // An unsafe block (`unsafe {`, possibly with the brace on the
            // next line).
            "unsafe block"
        };
        let has = annotated(&f.lines, lineno, "SAFETY:") || annotated(&f.lines, lineno, "Safety:");
        if !has {
            out.violations.push(Violation {
                file: f.path.clone(),
                line: lineno,
                rule: "safety-comment",
                msg: format!("{kind} without a `// SAFETY:` comment"),
            });
        }
    }
}

/// R3: Relaxed ordering on seqlock-version / migration-counter atomics.
fn rule_relaxed_ordering(f: &FileLex, out: &mut Findings) {
    let file_allowlisted = RELAXED_ALLOWLIST_FILES.contains(&f.file_name());
    for (li, line) in f.lines.iter().enumerate() {
        let lineno = li + 1;
        let code = &line.code;
        if !code.contains("Ordering::Relaxed") {
            continue;
        }
        let guarded = code.contains("version") || code.contains("migrate");
        if !guarded {
            continue;
        }
        let fn_name = f.st.fn_at(lineno).map(|s| s.name.as_str()).unwrap_or("");
        if file_allowlisted && RELAXED_ALLOWLIST_FNS.contains(&fn_name) {
            continue;
        }
        let v = Violation {
            file: f.path.clone(),
            line: lineno,
            rule: "relaxed-ordering",
            msg: format!(
                "Ordering::Relaxed on a seqlock/migration atomic outside the \
                 audited helpers (fn `{fn_name}`); use Acquire/Release, move \
                 into an allowlisted fence-paired helper, or waive with \
                 `// pmlint: relaxed-ok(<reason>)`"
            ),
        };
        push_finding(out, &f.lines, lineno, "pmlint: relaxed-ok(", v);
    }
}

/// R4: `PmPtr` values cached across a persist-fuse crash point.
fn rule_ptr_cache(f: &FileLex, out: &mut Findings) {
    for span in &f.st.fns {
        let body = || f.lines[span.start - 1..span.end].iter().enumerate();
        let arm = body().find(|(_, l)| l.code.contains("arm_persist_fuse("));
        if arm.is_none() {
            continue;
        }
        let Some((crash_rel, _)) = body().find(|(_, l)| l.code.contains("simulate_crash(")) else {
            continue;
        };
        let crash_line = span.start + crash_rel;
        for (rel, l) in body() {
            let lineno = span.start + rel;
            if lineno >= crash_line {
                break;
            }
            let code = l.code.trim_start();
            if !code.starts_with("let ") {
                continue;
            }
            if !PMPTR_READS.iter().any(|p| l.code.contains(p)) {
                continue;
            }
            // Binding name: first identifier after `let` (skipping `mut`).
            let mut name = code["let ".len()..].trim_start();
            if let Some(rest) = name.strip_prefix("mut ") {
                name = rest;
            }
            let ident: String = name
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.is_empty() {
                continue;
            }
            let used_after = f.lines[crash_line..span.end]
                .iter()
                .any(|l2| contains_word(&l2.code, &ident));
            if used_after {
                let v = Violation {
                    file: f.path.clone(),
                    line: lineno,
                    rule: "ptr-cache",
                    msg: format!(
                        "`{ident}` caches a PM pointer read before \
                         simulate_crash (line {crash_line}) and is used after \
                         it; re-read after the crash or waive with \
                         `// pmlint: ptr-cache-ok(<reason>)`"
                    ),
                };
                push_finding(out, &f.lines, lineno, "pmlint: ptr-cache-ok(", v);
            }
        }
    }
}

/// Run every rule over a set of `(path, source)` pairs.
pub fn analyze_sources(sources: Vec<(String, String)>) -> Report {
    let ws = Workspace::build(sources);
    let mut out = Findings::default();
    rule_persist_coverage(&ws, &mut out);
    for f in &ws.files {
        rule_safety_comments(f, &mut out);
        rule_relaxed_ordering(f, &mut out);
        rule_ptr_cache(f, &mut out);
    }
    let (lock_edges, try_edges) = locks::rule_lock_order(&ws, &mut out);
    locks::rule_fence_pairing(&ws, &mut out);
    guards::run(&ws, &mut out);
    let mut liveness = locks::acq_liveness(&ws);
    liveness.extend(racer::run(&ws, &mut out));
    let mut violations = out.violations;
    let mut waived = out.waived;
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    waived.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Report {
        files: ws.files.len(),
        violations,
        waived,
        lock_edges,
        try_edges,
        liveness,
    }
}

/// Lint one file's source in isolation (fixture/self-test entry point).
/// `path` is used for rule scoping (test dirs, allowlisted files) and
/// reporting. Interprocedural reasoning sees only this one file.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    analyze_sources(vec![(path.to_string(), src.to_string())]).violations
}

/// Collect the workspace's lintable `.rs` files under `root`.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut roots: Vec<PathBuf> = Vec::new();
    for d in ["src", "tests", "benches", "examples"] {
        roots.push(root.join(d));
    }
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for c in crates.flatten() {
            for d in ["src", "tests", "benches", "examples"] {
                roots.push(c.path().join(d));
            }
        }
    }
    for r in roots {
        collect_rs(&r, &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for e in rd.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Analyze every workspace file under `root` as one call-graph-connected
/// unit.
pub fn analyze_workspace(root: &Path) -> Report {
    let files = workspace_files(root);
    let mut sources = Vec::new();
    for f in &files {
        let Ok(src) = std::fs::read_to_string(f) else {
            continue;
        };
        let label = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((label, src));
    }
    analyze_sources(sources)
}

/// Lint every workspace file under `root`. Returns (files scanned,
/// violations). Kept for callers that predate [`analyze_workspace`].
pub fn lint_workspace(root: &Path) -> (usize, Vec<Violation>) {
    let r = analyze_workspace(root);
    (r.files, r.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interprocedural_coverage_accepts_caller_persists() {
        let src = "\
fn leaf_write_key(pool: &P) {
    pool.write(p, &v);
}
fn caller_a(pool: &P) {
    leaf_write_key(pool);
    pool.persist(p, 8);
}
fn caller_b(pool: &P) {
    leaf_write_key(pool);
    pool.persist_range(p, 8);
}
";
        let v = lint_source("crates/epalloc/src/leaf.rs", src);
        assert!(
            v.iter().all(|x| x.rule != "persist-coverage"),
            "caller-covered write flagged: {v:?}"
        );
    }

    #[test]
    fn interprocedural_coverage_rejects_one_bad_caller() {
        let src = "\
fn leaf_write_key(pool: &P) {
    pool.write(p, &v);
}
fn caller_a(pool: &P) {
    leaf_write_key(pool);
    pool.persist(p, 8);
}
fn caller_forgot(pool: &P) {
    leaf_write_key(pool);
}
";
        let v = lint_source("crates/epalloc/src/leaf.rs", src);
        assert_eq!(
            v.iter().filter(|x| x.rule == "persist-coverage").count(),
            1,
            "uncovered caller must keep the site hot: {v:?}"
        );
    }

    #[test]
    fn interprocedural_coverage_walks_caller_chains() {
        // write → wrapper (no persist) → outer (persists): depth 2.
        let src = "\
fn inner_write(pool: &P) {
    pool.write(p, &v);
}
fn wrapper(pool: &P) {
    inner_write(pool);
}
fn outer(pool: &P) {
    wrapper(pool);
    pool.persist(p, 8);
}
";
        let v = lint_source("crates/epalloc/src/leaf.rs", src);
        assert!(
            v.iter().all(|x| x.rule != "persist-coverage"),
            "depth-2 coverage missed: {v:?}"
        );
    }

    #[test]
    fn interprocedural_coverage_is_conservative_on_address_taken() {
        let src = "\
fn cb_write(pool: &P) {
    pool.write(p, &v);
}
fn caller(pool: &P) {
    cb_write(pool);
    pool.persist(p, 8);
}
fn registrar(pool: &P) {
    register(cb_write);
}
";
        let v = lint_source("crates/epalloc/src/leaf.rs", src);
        assert_eq!(
            v.iter().filter(|x| x.rule == "persist-coverage").count(),
            1,
            "address-taken fn must not claim caller coverage: {v:?}"
        );
    }

    #[test]
    fn zero_callers_is_not_coverage() {
        let src = "pub fn orphan_write(pool: &P) {\n    pool.write(p, &v);\n}\n";
        let v = lint_source("crates/epalloc/src/leaf.rs", src);
        assert_eq!(v.iter().filter(|x| x.rule == "persist-coverage").count(), 1);
    }

    #[test]
    fn waived_findings_are_reported_not_dropped() {
        let src = "\
fn lone_write(pool: &P) {
    // pmlint: deferred-persist(test fixture)
    pool.write(p, &v);
}
";
        let r = analyze_sources(vec![(
            "crates/epalloc/src/leaf.rs".to_string(),
            src.to_string(),
        )]);
        assert!(
            r.violations.is_empty(),
            "waiver ignored: {:?}",
            r.violations
        );
        assert_eq!(r.waived.len(), 1);
        assert_eq!(r.waived[0].rule, "persist-coverage");
    }
}
