//! A lexical lint for the repo's persistence-ordering and concurrency
//! disciplines — the invariants the compiler cannot see but Algorithms 1–7
//! (and the optimistic read path) depend on.
//!
//! The build environment has no crates.io mirror, so there is no `syn`;
//! the linter is a careful line-level lexer instead: comments and string
//! literals are stripped with a small state machine, function extents are
//! recovered by brace tracking, and each rule works on the resulting
//! `(code, comment)` view. That is deliberately conservative — the rules
//! are tuned so the real tree lints clean and every seeded fixture
//! violation fires (see `tests/selftest.rs`).
//!
//! # Rules
//!
//! * **R1 `persist-coverage`** — every `PmemPool::write` /
//!   `write_bytes` / `write_zeros` / `write_u64_atomic` call site in
//!   non-test source must be followed, within the same function, by a
//!   `persist`-family call, or carry a
//!   `// pmlint: deferred-persist(<reason>)` waiver. (`RwLock::write()`
//!   lock acquires take no arguments and are ignored.) Test code is
//!   exempt: crash-simulation tests write without persisting *on
//!   purpose*, and the `pm-check` runtime tracker covers them instead.
//! * **R2 `safety-comment`** — every `unsafe {` block and `unsafe impl`
//!   must be annotated with a `// SAFETY:` comment on the same line or in
//!   the comment block immediately above. `unsafe fn` declarations are
//!   exempt (they carry `# Safety` docs).
//! * **R3 `relaxed-ordering`** — `Ordering::Relaxed` on seqlock-version
//!   or migration-counter atomics is forbidden outside the audited
//!   fence-paired helpers in `dir.rs`/`optimistic.rs`
//!   (`validate`, `probe_raw`, `snapshot_bucket_raw`, `help_migrate`).
//!   Waiver: `// pmlint: relaxed-ok(<reason>)`.
//! * **R4 `ptr-cache`** — in a function that arms the persist fuse and
//!   simulates a crash, a `PmPtr` read from PM *before* the crash must
//!   not be used after it: the crash may have reverted the pointer, so
//!   the cached copy dangles. Waiver: `// pmlint: ptr-cache-ok(<reason>)`.

use std::fmt;
use std::path::{Path, PathBuf};

/// Audited seqlock/migration helpers allowed to use `Ordering::Relaxed`
/// (each pairs the load with an `Acquire` fence or is a pure stat).
const RELAXED_ALLOWLIST_FNS: &[&str] = &[
    "validate",
    "probe_raw",
    "snapshot_bucket_raw",
    "help_migrate",
];

/// Files whose allowlisted helpers may use `Relaxed` on guarded atomics.
const RELAXED_ALLOWLIST_FILES: &[&str] = &["dir.rs", "optimistic.rs"];

/// Calls that read a `PmPtr` out of PM (rule R4's cache sources).
const PMPTR_READS: &[&str] = &["leaf_read_pvalue(", "read::<PmPtr>", "read_pvalue("];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// A source line split into its code and comment parts.
struct Line {
    code: String,
    comment: String,
}

/// Carry-over lexer state between lines.
#[derive(Default)]
struct SplitState {
    block_comment_depth: u32,
    in_string: bool,
    raw_string_hashes: Option<u32>,
}

/// Strip one line into (code, comment) under `st`. String-literal interiors
/// become spaces in the code view so tokens inside them never match rules.
fn split_line(line: &str, st: &mut SplitState) -> Line {
    let ch: Vec<char> = line.chars().collect();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0usize;
    while i < ch.len() {
        if st.block_comment_depth > 0 {
            if ch[i] == '*' && i + 1 < ch.len() && ch[i + 1] == '/' {
                st.block_comment_depth -= 1;
                i += 2;
            } else if ch[i] == '/' && i + 1 < ch.len() && ch[i + 1] == '*' {
                st.block_comment_depth += 1;
                i += 2;
            } else {
                comment.push(ch[i]);
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = st.raw_string_hashes {
            // Inside r"..." / r#"..."#: ends at '"' followed by `hashes` '#'.
            if ch[i] == '"' {
                let mut n = 0u32;
                while n < hashes && i + 1 + (n as usize) < ch.len() && ch[i + 1 + n as usize] == '#'
                {
                    n += 1;
                }
                if n == hashes {
                    st.raw_string_hashes = None;
                    i += 1 + hashes as usize;
                    code.push(' ');
                    continue;
                }
            }
            i += 1;
            code.push(' ');
            continue;
        }
        if st.in_string {
            if ch[i] == '\\' {
                i += 2;
                code.push(' ');
                continue;
            }
            if ch[i] == '"' {
                st.in_string = false;
            }
            code.push(' ');
            i += 1;
            continue;
        }
        match ch[i] {
            '/' if i + 1 < ch.len() && ch[i + 1] == '/' => {
                comment.push_str(&ch[i + 2..].iter().collect::<String>());
                break;
            }
            '/' if i + 1 < ch.len() && ch[i + 1] == '*' => {
                st.block_comment_depth += 1;
                i += 2;
            }
            '"' => {
                st.in_string = true;
                code.push(' ');
                i += 1;
            }
            'r' if i + 1 < ch.len() && (ch[i + 1] == '"' || ch[i + 1] == '#') => {
                // Possible raw string r"..." or r#"..."#.
                let mut j = i + 1;
                let mut hashes = 0u32;
                while j < ch.len() && ch[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < ch.len() && ch[j] == '"' {
                    st.raw_string_hashes = Some(hashes);
                    code.push(' ');
                    i = j + 1;
                } else {
                    code.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs. lifetime: a literal closes within a few
                // chars ('x', '\n', '\u{..}'); a lifetime does not.
                let rest: String = ch[i..].iter().take(12).collect();
                if let Some(len) = char_literal_len(&rest) {
                    for _ in 0..len {
                        code.push(' ');
                    }
                    i += len;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    Line { code, comment }
}

/// Length (in chars) of a char literal starting at `s[0] == '\''`, or None
/// for a lifetime.
fn char_literal_len(s: &str) -> Option<usize> {
    let ch: Vec<char> = s.chars().collect();
    if ch.len() < 3 {
        return None;
    }
    if ch[1] == '\\' {
        // Escaped: find the closing quote.
        for (j, c) in ch.iter().enumerate().skip(2) {
            if *c == '\'' {
                return Some(j + 1);
            }
        }
        None
    } else if ch[2] == '\'' {
        Some(3)
    } else {
        None
    }
}

/// A function's extent in lines (1-based, inclusive).
#[derive(Debug, Clone)]
struct FnSpan {
    name: String,
    start: usize,
    end: usize,
}

/// Recover function extents and `#[cfg(test)]`-module extents by brace
/// tracking over the code view.
struct Structure {
    fns: Vec<FnSpan>,
    /// Line-indexed (1-based): true when inside a `#[cfg(test)]` module.
    in_test_mod: Vec<bool>,
}

fn analyze_structure(lines: &[Line]) -> Structure {
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<(String, usize, usize)> = Vec::new(); // name, open depth, start line
    let mut test_mod_stack: Vec<usize> = Vec::new(); // open depths
    let mut in_test_mod = vec![false; lines.len() + 1];
    let mut brace_depth = 0usize;
    let mut paren_depth = 0i32;
    let mut pending_fn: Option<(String, usize)> = None; // name, start line
    let mut awaiting_name = false;
    let mut pending_test_mod = false;

    for (li, line) in lines.iter().enumerate() {
        let lineno = li + 1;
        in_test_mod[lineno] = !test_mod_stack.is_empty();
        let code = &line.code;
        // `#[cfg(test)]` and compound forms like `#[cfg(all(test, ...))]`.
        if code.contains("#[cfg(") && contains_word(code, "test") {
            pending_test_mod = true;
        }
        let ch: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < ch.len() {
            let c = ch[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < ch.len() && (ch[i].is_alphanumeric() || ch[i] == '_') {
                    i += 1;
                }
                let ident: String = ch[start..i].iter().collect();
                if awaiting_name {
                    pending_fn = Some((ident.clone(), lineno));
                    awaiting_name = false;
                } else if ident == "fn" {
                    awaiting_name = true;
                }
                continue;
            }
            match c {
                '(' => {
                    // `fn(...)` pointer type, not a definition.
                    awaiting_name = false;
                    paren_depth += 1;
                }
                ')' => paren_depth -= 1,
                '{' if paren_depth == 0 => {
                    brace_depth += 1;
                    if pending_test_mod {
                        // A `#[cfg(test)]` item (module or function) opens
                        // here: everything inside is test code.
                        test_mod_stack.push(brace_depth);
                        pending_test_mod = false;
                        in_test_mod[lineno] = true;
                    }
                    if let Some((name, start)) = pending_fn.take() {
                        stack.push((name, brace_depth, start));
                    }
                }
                '}' if paren_depth == 0 => {
                    if let Some((_, d, _)) = stack.last() {
                        if *d == brace_depth {
                            let (name, _, start) = stack.pop().unwrap();
                            fns.push(FnSpan {
                                name,
                                start,
                                end: lineno,
                            });
                        }
                    }
                    if test_mod_stack.last() == Some(&brace_depth) {
                        test_mod_stack.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                ';' if paren_depth == 0 => {
                    // Trait method declaration without a body.
                    pending_fn = None;
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Unterminated functions (EOF): close at the last line.
    while let Some((name, _, start)) = stack.pop() {
        fns.push(FnSpan {
            name,
            start,
            end: lines.len(),
        });
    }
    Structure { fns, in_test_mod }
}

impl Structure {
    /// Innermost function containing `line` (1-based).
    fn fn_at(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .min_by_key(|f| f.end - f.start)
    }
}

/// True when `hay` contains `needle` as a word (identifier-boundary match).
fn contains_word(hay: &str, needle: &str) -> bool {
    let hb = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = hb[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = at + needle.len();
        let after_ok = after >= hb.len() || {
            let b = hb[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Does any comment on `line` or the contiguous comment block above carry
/// `marker`? Used for SAFETY comments and pmlint waivers.
fn annotated(lines: &[Line], line: usize, marker: &str) -> bool {
    let idx = line - 1;
    if lines[idx].comment.contains(marker) {
        return true;
    }
    // Walk up through comment-only (or attribute-only) lines.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code_trim = l.code.trim();
        let is_pure_comment = code_trim.is_empty() || code_trim.starts_with("#[");
        if !l.comment.is_empty() && l.comment.contains(marker) {
            return true;
        }
        if !is_pure_comment {
            return false;
        }
        if l.comment.is_empty() && code_trim.is_empty() {
            // Blank line ends the annotation block.
            return false;
        }
    }
    false
}

/// Find `.name(`-style method calls of `name` in `code`, returning the
/// index just past the opening parenthesis for each.
fn method_calls(code: &str, name: &str) -> Vec<usize> {
    let pat = format!(".{name}(");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat) {
        out.push(from + pos + pat.len());
        from += pos + pat.len();
    }
    out
}

/// R1: persist coverage of PM write call sites (non-test code only).
fn rule_persist_coverage(path: &str, lines: &[Line], st: &Structure, out: &mut Vec<Violation>) {
    // Test code is exempt: crash tests omit persists deliberately, and the
    // pm-check runtime tracker owns that territory.
    if path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/") {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        let lineno = li + 1;
        if st.in_test_mod[lineno] {
            continue;
        }
        let code = &line.code;
        let mut sites: Vec<usize> = Vec::new();
        for name in ["write_bytes", "write_zeros", "write_u64_atomic"] {
            sites.extend(method_calls(code, name));
        }
        // `.write(` only with a non-empty argument list — `.write()` is a
        // lock acquire, not a PM store.
        for after in method_calls(code, "write") {
            let rest = code[after..].trim_start();
            if code[..after].ends_with(".write(") && !rest.starts_with(')') {
                sites.push(after);
            }
        }
        if sites.is_empty() {
            continue;
        }
        if annotated(lines, lineno, "pmlint: deferred-persist(") {
            continue;
        }
        let Some(f) = st.fn_at(lineno) else {
            out.push(Violation {
                file: path.to_string(),
                line: lineno,
                rule: "persist-coverage",
                msg: "PM write outside any function?".into(),
            });
            continue;
        };
        // Covered if a persist-family token appears later on this line or
        // on any following line of the same function.
        let first_site = *sites.iter().min().unwrap();
        let mut covered = code[first_site..].contains("persist");
        if !covered {
            for l in lines.iter().take(f.end).skip(lineno) {
                if l.code.contains("persist") {
                    covered = true;
                    break;
                }
            }
        }
        if !covered {
            out.push(Violation {
                file: path.to_string(),
                line: lineno,
                rule: "persist-coverage",
                msg: format!(
                    "PM write in `{}` has no covering persist later in the \
                     function; persist it or waive with \
                     `// pmlint: deferred-persist(<reason>)`",
                    f.name
                ),
            });
        }
    }
}

/// R2: SAFETY comments on `unsafe` blocks and impls.
fn rule_safety_comments(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (li, line) in lines.iter().enumerate() {
        let lineno = li + 1;
        let code = &line.code;
        if !contains_word(code, "unsafe") {
            continue;
        }
        // Classify the token's context from what follows it.
        let pos = code.find("unsafe").unwrap();
        let after = code[pos + "unsafe".len()..].trim_start();
        let kind = if after.starts_with("fn") || after.starts_with("trait") {
            // `unsafe fn` / `unsafe trait`: contract documented by
            // `# Safety` rustdoc, not a block comment.
            continue;
        } else if after.starts_with("impl") {
            "unsafe impl"
        } else {
            // An unsafe block (`unsafe {`, possibly with the brace on the
            // next line).
            "unsafe block"
        };
        let has = annotated(lines, lineno, "SAFETY:") || annotated(lines, lineno, "Safety:");
        if !has {
            out.push(Violation {
                file: path.to_string(),
                line: lineno,
                rule: "safety-comment",
                msg: format!("{kind} without a `// SAFETY:` comment"),
            });
        }
    }
}

/// R3: Relaxed ordering on seqlock-version / migration-counter atomics.
fn rule_relaxed_ordering(path: &str, lines: &[Line], st: &Structure, out: &mut Vec<Violation>) {
    let file_name = Path::new(path)
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let file_allowlisted = RELAXED_ALLOWLIST_FILES.contains(&file_name.as_str());
    for (li, line) in lines.iter().enumerate() {
        let lineno = li + 1;
        let code = &line.code;
        if !code.contains("Ordering::Relaxed") {
            continue;
        }
        let guarded = code.contains("version") || code.contains("migrate");
        if !guarded {
            continue;
        }
        if annotated(lines, lineno, "pmlint: relaxed-ok(") {
            continue;
        }
        let fn_name = st.fn_at(lineno).map(|f| f.name.as_str()).unwrap_or("");
        if file_allowlisted && RELAXED_ALLOWLIST_FNS.contains(&fn_name) {
            continue;
        }
        out.push(Violation {
            file: path.to_string(),
            line: lineno,
            rule: "relaxed-ordering",
            msg: format!(
                "Ordering::Relaxed on a seqlock/migration atomic outside the \
                 audited helpers (fn `{fn_name}`); use Acquire/Release, move \
                 into an allowlisted fence-paired helper, or waive with \
                 `// pmlint: relaxed-ok(<reason>)`"
            ),
        });
    }
}

/// R4: `PmPtr` values cached across a persist-fuse crash point.
fn rule_ptr_cache(path: &str, lines: &[Line], st: &Structure, out: &mut Vec<Violation>) {
    for f in &st.fns {
        let body = || lines[f.start - 1..f.end].iter().enumerate();
        let arm = body().find(|(_, l)| l.code.contains("arm_persist_fuse("));
        if arm.is_none() {
            continue;
        }
        let Some((crash_rel, _)) = body().find(|(_, l)| l.code.contains("simulate_crash(")) else {
            continue;
        };
        let crash_line = f.start + crash_rel;
        for (rel, l) in body() {
            let lineno = f.start + rel;
            if lineno >= crash_line {
                break;
            }
            let code = l.code.trim_start();
            if !code.starts_with("let ") {
                continue;
            }
            if !PMPTR_READS.iter().any(|p| l.code.contains(p)) {
                continue;
            }
            // Binding name: first identifier after `let` (skipping `mut`).
            let mut name = code["let ".len()..].trim_start();
            if let Some(rest) = name.strip_prefix("mut ") {
                name = rest;
            }
            let ident: String = name
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.is_empty() {
                continue;
            }
            let used_after = lines[crash_line..f.end]
                .iter()
                .any(|l2| contains_word(&l2.code, &ident));
            if used_after && !annotated(lines, lineno, "pmlint: ptr-cache-ok(") {
                out.push(Violation {
                    file: path.to_string(),
                    line: lineno,
                    rule: "ptr-cache",
                    msg: format!(
                        "`{ident}` caches a PM pointer read before \
                         simulate_crash (line {crash_line}) and is used after \
                         it; re-read after the crash or waive with \
                         `// pmlint: ptr-cache-ok(<reason>)`"
                    ),
                });
            }
        }
    }
}

/// Lint one file's source. `path` is used for rule scoping (test dirs,
/// allowlisted files) and reporting.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let mut state = SplitState::default();
    let lines: Vec<Line> = src.lines().map(|l| split_line(l, &mut state)).collect();
    let st = analyze_structure(&lines);
    let mut out = Vec::new();
    rule_persist_coverage(path, &lines, &st, &mut out);
    rule_safety_comments(path, &lines, &mut out);
    rule_relaxed_ordering(path, &lines, &st, &mut out);
    rule_ptr_cache(path, &lines, &st, &mut out);
    out
}

/// Collect the workspace's lintable `.rs` files under `root`.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut roots: Vec<PathBuf> = Vec::new();
    for d in ["src", "tests", "benches", "examples"] {
        roots.push(root.join(d));
    }
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for c in crates.flatten() {
            for d in ["src", "tests", "benches", "examples"] {
                roots.push(c.path().join(d));
            }
        }
    }
    for r in roots {
        collect_rs(&r, &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for e in rd.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Lint every workspace file under `root`. Returns (files scanned,
/// violations).
pub fn lint_workspace(root: &Path) -> (usize, Vec<Violation>) {
    let files = workspace_files(root);
    let mut all = Vec::new();
    for f in &files {
        let Ok(src) = std::fs::read_to_string(f) else {
            continue;
        };
        let label = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .into_owned();
        all.extend(lint_source(&label, &src));
    }
    (files.len(), all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_strips_comments_and_strings() {
        let mut st = SplitState::default();
        let l = split_line(r#"let x = "a.write(b)"; // pool.write(c)"#, &mut st);
        assert!(!l.code.contains("write"));
        assert!(l.comment.contains("pool.write(c)"));
    }

    #[test]
    fn splitter_handles_block_comments_across_lines() {
        let mut st = SplitState::default();
        let a = split_line("foo(); /* begin", &mut st);
        let b = split_line("unsafe { } */ bar();", &mut st);
        assert!(a.code.contains("foo"));
        assert!(!b.code.contains("unsafe"));
        assert!(b.code.contains("bar"));
    }

    #[test]
    fn splitter_handles_char_literals_and_lifetimes() {
        let mut st = SplitState::default();
        let l = split_line("fn f<'a>(x: &'a u8) -> char { '}' }", &mut st);
        assert!(!l.code.contains('}') || l.code.matches('}').count() == 1);
        let l2 = split_line("let q = 'x'; pool.write(p, &v);", &mut st);
        assert!(l2.code.contains(".write("));
    }

    #[test]
    fn fn_spans_nest() {
        let src = "fn outer() {\n    fn inner() {\n        x();\n    }\n    y();\n}\n";
        let mut st = SplitState::default();
        let lines: Vec<Line> = src.lines().map(|l| split_line(l, &mut st)).collect();
        let s = analyze_structure(&lines);
        assert_eq!(s.fn_at(3).unwrap().name, "inner");
        assert_eq!(s.fn_at(5).unwrap().name, "outer");
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("let leaf = x;", "leaf"));
        assert!(!contains_word("let leafy = x;", "leaf"));
        assert!(!contains_word("let aleaf = x;", "leaf"));
    }
}
