//! The workspace model and name-resolved call graph.
//!
//! Resolution is deliberately conservative — a call that cannot be pinned
//! to exactly one definition is dropped rather than guessed, so the
//! interprocedural rules (R1 caller-coverage, R5 lock propagation) only
//! ever reason over edges that are certainly real:
//!
//! * `self.f(…)` resolves through the caller's enclosing `impl` type.
//! * `Type::f(…)` / `Self::f(…)` resolve through impl qualifiers.
//! * `crate_name::f(…)` (with the `hart_` prefix normalized to the crate
//!   directory name) resolves to a free function of that crate.
//! * bare `f(…)` resolves to a free function unique in the caller's
//!   crate, else unique across the workspace.
//! * `recv.f(…)` with a non-`self` receiver resolves only when `f` has
//!   exactly one definition in the whole workspace **and** is not a
//!   generic method name (`read`, `write`, `lock`, …) — the class of
//!   names where receiver types genuinely diverge.
//! * macro invocations (`f!(…)`) and calls inside strings/comments are
//!   never calls.

use crate::lexer::Line;
use crate::structure::Structure;
use std::collections::HashMap;

/// Method names too generic to resolve through a bare receiver: many
/// types define them, so a lexical match would wire unrelated code
/// together (e.g. `pool.read(…)` must not resolve to `Shard::read`).
const GENERIC_METHODS: &[&str] = &[
    "read",
    "write",
    "lock",
    "try_lock",
    "try_read",
    "try_write",
    "new",
    "get",
    "set",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "load",
    "store",
    "swap",
    "add",
    "sub",
    "next",
    "iter",
    "find",
    "drop",
    "clone",
    "free",
    "clear",
    "reset",
    "run",
    "wait",
    "open",
    "close",
    "check",
    "init",
    "build",
    "create",
    "is_empty",
    "contains",
    "record",
    "finish",
    "apply",
    "flush",
];

/// One lexed + structured source file.
pub struct FileLex {
    /// Workspace-relative label, `/`-separated (e.g. `crates/hart/src/dir.rs`).
    pub path: String,
    /// Crate directory name (`hart`, `epalloc`, …; `root` for the root pkg).
    pub crate_name: String,
    pub lines: Vec<Line>,
    pub st: Structure,
}

impl FileLex {
    pub fn new(path: &str, src: &str) -> FileLex {
        let lines = crate::lexer::lex(src);
        let st = crate::structure::analyze_structure(&lines);
        FileLex {
            path: path.to_string(),
            crate_name: crate_of(path),
            lines,
            st,
        }
    }

    /// File name component (`dir.rs`).
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// True when every line of this file is test territory (integration
    /// tests, benches, examples). Lint fixtures are *not* exempt: the
    /// self-test lints them on purpose.
    pub fn is_test_path(&self) -> bool {
        let p = &self.path;
        p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/")
    }

    /// True when `line` is test code (test file, or `#[cfg(test)]` extent).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_path() || self.st.in_test_mod.get(line).copied().unwrap_or(false)
    }
}

/// Crate directory name for a workspace-relative path.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(c) = parts.next() {
            return c.to_string();
        }
    }
    "root".to_string()
}

/// Normalize a path-call qualifier to a crate directory name, if it is
/// one: `hart_epalloc` → `epalloc`, `parking_lot` → `parking_lot`.
fn qualifier_as_crate(q: &str) -> Option<String> {
    let norm = q.strip_prefix("hart_").unwrap_or(q).replace('_', "-");
    // Crate dirs in this workspace use no hyphens except none at all; the
    // underscore form is the import name, so try both spellings.
    Some(norm.replace('-', "_"))
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    Bare,
    SelfDot,
    Dotted { receiver: String },
    Path { qualifier: String },
}

/// A syntactic call site on one line.
#[derive(Debug, Clone)]
pub struct RawCall {
    pub name: String,
    pub kind: CallKind,
    /// Column of the first char of `name` (0-based, chars).
    pub col: usize,
}

/// Extract call sites from one code line.
pub fn scan_calls(code: &str) -> Vec<RawCall> {
    let ch: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut prev_ident: Option<(usize, usize)> = None; // start..end of last ident
    while i < ch.len() {
        let c = ch[i];
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < ch.len() && (ch[i].is_alphanumeric() || ch[i] == '_') {
                i += 1;
            }
            // Lifetime (`'a`)? The tick precedes the ident.
            if start > 0 && ch[start - 1] == '\'' {
                continue;
            }
            let followed_by_paren = i < ch.len() && ch[i] == '(';
            let is_macro = i < ch.len() && ch[i] == '!';
            let after_fn_kw = prev_ident
                .map(|(s, e)| ch[s..e].iter().collect::<String>() == "fn")
                .unwrap_or(false);
            if followed_by_paren && !is_macro && !after_fn_kw {
                let name: String = ch[start..i].iter().collect();
                let kind = classify_call(&ch, start);
                out.push(RawCall {
                    name,
                    kind,
                    col: start,
                });
            }
            prev_ident = Some((start, i));
            continue;
        }
        i += 1;
    }
    out
}

/// Classify the call whose name starts at `start` by what precedes it.
fn classify_call(ch: &[char], start: usize) -> CallKind {
    if start == 0 {
        return CallKind::Bare;
    }
    match ch[start - 1] {
        '.' => {
            let receiver = receiver_chain(ch, start - 1);
            if receiver == "self" {
                CallKind::SelfDot
            } else {
                CallKind::Dotted { receiver }
            }
        }
        ':' if start >= 2 && ch[start - 2] == ':' => {
            // Qualifier: the identifier right before the `::`.
            let mut j = start.saturating_sub(2);
            while j > 0 && (ch[j - 1].is_alphanumeric() || ch[j - 1] == '_') {
                j -= 1;
            }
            let q: String = ch[j..start - 2].iter().collect();
            CallKind::Path { qualifier: q }
        }
        _ => CallKind::Bare,
    }
}

/// Walk a dotted receiver chain backwards from the `.` at `dot`:
/// identifiers, `.` separators, and balanced `[…]` / `(…)` groups.
/// `self.classes[class.idx()].lock(` yields `self.classes[class.idx()]`.
pub fn receiver_chain(ch: &[char], dot: usize) -> String {
    let mut j = dot; // exclusive end of the chain is `dot`
    while j > 0 {
        let p = ch[j - 1];
        if p.is_alphanumeric() || p == '_' || p == '.' {
            j -= 1;
        } else if p == ']' || p == ')' {
            // Balanced group: skip back to its opener.
            let (open, close) = if p == ')' { ('(', ')') } else { ('[', ']') };
            let mut depth = 0i32;
            let mut k = j;
            while k > 0 {
                let c = ch[k - 1];
                if c == close {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k == 0 {
                break;
            }
            j = k - 1;
        } else {
            break;
        }
    }
    ch[j..dot].iter().collect::<String>()
}

/// The lock-relevant *field* of a receiver chain: trailing index/call
/// groups are stripped and the last `.`-separated identifier is taken.
/// `self.classes[class.idx()]` → `classes`; `GARBAGE` → `GARBAGE`.
pub fn receiver_field(receiver: &str) -> String {
    let mut s = receiver.trim_end();
    loop {
        let sb = s.as_bytes();
        if sb.is_empty() {
            return String::new();
        }
        let last = sb[sb.len() - 1];
        if last == b']' || last == b')' {
            let (open, close) = if last == b')' {
                (b'(', b')')
            } else {
                (b'[', b']')
            };
            let mut depth = 0i32;
            let mut cut = None;
            for (i, &b) in sb.iter().enumerate().rev() {
                if b == close {
                    depth += 1;
                } else if b == open {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i);
                        break;
                    }
                }
            }
            match cut {
                Some(i) => s = s[..i].trim_end(),
                None => return String::new(),
            }
        } else {
            break;
        }
    }
    s.rsplit('.').next().unwrap_or(s).to_string()
}

/// Identity of a function definition: (file index, fn index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId {
    pub file: usize,
    pub idx: usize,
}

/// A resolved call edge.
#[derive(Debug, Clone)]
pub struct Call {
    /// Where the call happens.
    pub file: usize,
    pub line: usize,
    pub col: usize,
    /// The enclosing function at the call site (None at module scope).
    pub caller: Option<FnId>,
    pub target: FnId,
}

/// The whole workspace: lexed files plus the resolved call graph.
pub struct Workspace {
    pub files: Vec<FileLex>,
    /// fn name → definitions.
    defs: HashMap<String, Vec<FnId>>,
    /// All resolved calls.
    pub calls: Vec<Call>,
    /// target fn → indices into `calls`.
    pub callers: HashMap<FnId, Vec<usize>>,
    /// caller fn → indices into `calls`.
    pub outcalls: HashMap<FnId, Vec<usize>>,
}

impl Workspace {
    pub fn build(sources: Vec<(String, String)>) -> Workspace {
        let files: Vec<FileLex> = sources.iter().map(|(p, s)| FileLex::new(p, s)).collect();
        let mut defs: HashMap<String, Vec<FnId>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (i, span) in f.st.fns.iter().enumerate() {
                defs.entry(span.name.clone())
                    .or_default()
                    .push(FnId { file: fi, idx: i });
            }
        }
        let mut ws = Workspace {
            files,
            defs,
            calls: Vec::new(),
            callers: HashMap::new(),
            outcalls: HashMap::new(),
        };
        ws.resolve_all();
        ws
    }

    pub fn span(&self, id: FnId) -> &crate::structure::FnSpan {
        &self.files[id.file].st.fns[id.idx]
    }

    fn resolve_all(&mut self) {
        let mut calls = Vec::new();
        for (fi, f) in self.files.iter().enumerate() {
            for (li, line) in f.lines.iter().enumerate() {
                let lineno = li + 1;
                for rc in scan_calls(&line.code) {
                    let caller = f.st.fn_idx_at(lineno).map(|idx| FnId { file: fi, idx });
                    if let Some(target) = self.resolve(fi, caller, &rc) {
                        // A "call" to the enclosing definition's own header
                        // line is the definition itself; scan_calls already
                        // skipped `fn name(`, so nothing to do here.
                        calls.push(Call {
                            file: fi,
                            line: lineno,
                            col: rc.col,
                            caller,
                            target,
                        });
                    }
                }
            }
        }
        for (i, c) in calls.iter().enumerate() {
            self.callers.entry(c.target).or_default().push(i);
            if let Some(cf) = c.caller {
                self.outcalls.entry(cf).or_default().push(i);
            }
        }
        self.calls = calls;
    }

    /// Resolve one syntactic call from file `fi` to a unique definition.
    fn resolve(&self, fi: usize, caller: Option<FnId>, rc: &RawCall) -> Option<FnId> {
        let cands = self.defs.get(&rc.name)?;
        let caller_crate = &self.files[fi].crate_name;
        let caller_qual = caller.and_then(|id| self.span(id).qualifier.clone());
        let by_type = |type_name: &str| -> Option<FnId> {
            let mut hits = cands
                .iter()
                .filter(|id| self.span(**id).qualifier.as_deref() == Some(type_name));
            let first = hits.next()?;
            // Same method on the same type in two crates (e.g. sibling
            // trees): prefer an unambiguous same-crate hit.
            let rest: Vec<_> = hits.collect();
            if rest.is_empty() {
                return Some(*first);
            }
            let mut same_crate = std::iter::once(first)
                .chain(rest)
                .filter(|id| &self.files[id.file].crate_name == caller_crate);
            match (same_crate.next(), same_crate.next()) {
                (Some(one), None) => Some(*one),
                _ => None,
            }
        };
        let free_in = |crate_name: &str| -> Option<FnId> {
            let mut hits = cands.iter().filter(|id| {
                self.span(**id).qualifier.is_none() && self.files[id.file].crate_name == crate_name
            });
            match (hits.next(), hits.next()) {
                (Some(one), None) => Some(*one),
                _ => None,
            }
        };
        match &rc.kind {
            CallKind::SelfDot => by_type(caller_qual.as_deref()?),
            CallKind::Path { qualifier } => {
                if qualifier == "Self" {
                    return by_type(caller_qual.as_deref()?);
                }
                if qualifier == "crate" {
                    return free_in(caller_crate);
                }
                if let Some(krate) = qualifier_as_crate(qualifier) {
                    if self.files.iter().any(|f| f.crate_name == krate) {
                        if let Some(hit) = free_in(&krate) {
                            return Some(hit);
                        }
                    }
                }
                if let Some(hit) = by_type(qualifier) {
                    return Some(hit);
                }
                // Module-qualified path (`leaf::leaf_write_key`): the
                // module may live in the caller's crate or be re-exported
                // from another, so fall back to a workspace-unique free
                // fn — missing a real caller here would make R1's
                // caller-coverage claim unsound, not just imprecise.
                free_in(caller_crate).or_else(|| {
                    let mut hits = cands
                        .iter()
                        .filter(|id| self.span(**id).qualifier.is_none());
                    match (hits.next(), hits.next()) {
                        (Some(one), None) => Some(*one),
                        _ => None,
                    }
                })
            }
            CallKind::Bare => free_in(caller_crate).or_else(|| {
                let mut hits = cands
                    .iter()
                    .filter(|id| self.span(**id).qualifier.is_none());
                match (hits.next(), hits.next()) {
                    (Some(one), None) => Some(*one),
                    _ => None,
                }
            }),
            CallKind::Dotted { .. } => {
                if GENERIC_METHODS.contains(&rc.name.as_str()) {
                    return None;
                }
                match (cands.first(), cands.get(1)) {
                    (Some(one), None) => Some(*one),
                    _ => None,
                }
            }
        }
    }

    /// True when `name` is used as a value (address taken / passed as a
    /// callback) anywhere outside imports — the conservative signal that
    /// there may be callers the graph cannot see.
    pub fn address_taken(&self, name: &str) -> bool {
        for f in &self.files {
            let mut in_use_stmt = false;
            for line in &f.lines {
                let code = line.code.trim_start();
                // Imports name functions without taking their address —
                // including the continuation lines of a multi-line
                // `use crate::{a, b, …};` block.
                let opens_use = code.starts_with("use ")
                    || code.starts_with("pub use ")
                    || (code.starts_with("pub(") && code.contains(") use "));
                if opens_use || in_use_stmt {
                    in_use_stmt = !code.contains(';');
                    continue;
                }
                let ch: Vec<char> = line.code.chars().collect();
                let mut from = 0usize;
                let s: String = ch.iter().collect();
                while let Some(pos) = s[from..].find(name) {
                    let at = from + pos;
                    from = at + name.len();
                    let before_ok = at == 0
                        || !(ch[at - 1].is_alphanumeric()
                            || ch[at - 1] == '_'
                            || ch[at - 1] == '.');
                    let end = at + name.len();
                    let after_ident =
                        end < ch.len() && (ch[end].is_alphanumeric() || ch[end] == '_');
                    if !before_ok || after_ident {
                        continue;
                    }
                    // Word match. A call (`name(`), a path segment
                    // (`name::`), or a definition (`fn name`) is fine;
                    // anything else is value use.
                    let next = ch.get(end).copied().unwrap_or(' ');
                    let next2 = ch.get(end + 1).copied().unwrap_or(' ');
                    let is_call = next == '(';
                    let is_path = next == ':' && next2 == ':';
                    let is_def = at >= 3 && s[..at].trim_end().ends_with("fn");
                    let is_field = at >= 1 && ch[at - 1] == '.';
                    let _ = is_field;
                    if !(is_call || is_path || is_def) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn receiver_chains_and_fields() {
        let line: Vec<char> = "let g = self.classes[class.idx()].lock();"
            .chars()
            .collect();
        let dot = line.iter().collect::<String>().find(".lock(").unwrap();
        let recv = receiver_chain(&line, dot);
        assert_eq!(recv, "self.classes[class.idx()]");
        assert_eq!(receiver_field(&recv), "classes");
        assert_eq!(receiver_field("GARBAGE"), "GARBAGE");
        assert_eq!(receiver_field("bucket.entries"), "entries");
    }

    #[test]
    fn self_calls_resolve_through_impl_qualifier() {
        let src = "\
impl Shard {
    fn write(&self) { self.open(); }
    fn open(&self) { x(); }
}
impl Pool {
    fn write(&self) { y(); }
}
";
        let w = ws(&[("crates/hart/src/dir.rs", src)]);
        // `self.open()` resolves to Shard::open even though resolution of
        // dotted generic names is off.
        let open_def = w.files[0]
            .st
            .fns
            .iter()
            .position(|f| f.name == "open")
            .unwrap();
        let call = w
            .calls
            .iter()
            .find(|c| w.span(c.target).name == "open")
            .expect("self.open() resolved");
        assert_eq!(
            call.target,
            FnId {
                file: 0,
                idx: open_def
            }
        );
    }

    #[test]
    fn generic_dotted_names_do_not_resolve() {
        let src = "\
impl Shard { fn read(&self) { a(); } }
fn user(pool: &Pool) { pool.read(); }
";
        let w = ws(&[("crates/hart/src/dir.rs", src)]);
        assert!(
            !w.calls.iter().any(|c| w.span(c.target).name == "read"),
            "pool.read() must not resolve to Shard::read"
        );
    }

    #[test]
    fn crate_qualified_paths_resolve_cross_crate() {
        let a = "pub fn leafy_write(p: &P) { q(); }\n";
        let b = "fn caller(p: &P) { hart_epalloc::leafy_write(p); }\n";
        let w = ws(&[
            ("crates/epalloc/src/leaf.rs", a),
            ("crates/fptree/src/pmleaf.rs", b),
        ]);
        let call = w
            .calls
            .iter()
            .find(|c| w.span(c.target).name == "leafy_write")
            .expect("crate-qualified call resolved");
        assert_eq!(call.file, 1);
        assert_eq!(call.target.file, 0);
    }

    #[test]
    fn address_taken_is_detected() {
        let src = "fn f() {}\nfn g() { h(f); }\nfn direct() { f(); }\n";
        let w = ws(&[("crates/hart/src/x.rs", src)]);
        assert!(w.address_taken("f"));
        let src2 = "fn f() {}\nfn direct() { f(); }\nuse x::{f};\n";
        let w2 = ws(&[("crates/hart/src/x.rs", src2)]);
        assert!(!w2.address_taken("f"));
    }
}
