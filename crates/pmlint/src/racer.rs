//! R10 `guarded-by` and R11 `atomic-protocol` — the lock-set race
//! detector and the workspace-wide atomic publish-protocol checker.
//!
//! # R10 — guarded-by
//!
//! HART's shared state is guarded by the ranked locks R5 already
//! classifies, but R5 only checks acquisition *order* — nothing verified
//! that a given field write actually happens under its covering lock.
//! R10 closes that gap with a declarative [`GUARDED_BY`] table mirroring
//! the R5 hierarchy: each entry names a field of a registered concurrent
//! type (scoped by crate and optionally file) plus the access shape that
//! must be covered and the lock classes (any-of) that cover it.
//!
//! The lock set held at a site is computed from three sources:
//!
//! 1. **Direct acquisitions** in the enclosing function (the same
//!    classified `Acq` ranges R5 builds, including their lexical hold
//!    ranges; a held `try_*` guard counts — once acquired it covers).
//! 2. **Guard-typed parameters/returns** ([`GUARD_PARAMS`]): a function
//!    whose header names `RwLockWriteGuard<…, ShardInner>` holds `SHARD`
//!    for its whole body — the caller proved the acquisition by
//!    constructing the guard.
//! 3. **Guard impls** ([`GUARD_IMPLS`]): methods of a guard wrapper type
//!    (e.g. `ShardWriteGuard::drop`) run with the wrapped lock held.
//!
//! When the site's own function holds nothing required, the check walks
//! the call graph *upward* (bounded depth, same shape as R1's
//! caller-coverage): the site passes only if every non-test caller holds
//! a required class at its call site, conservatively failing on
//! address-taken functions, unresolvable callers, module-scope call
//! sites, and recursion. Waiver: `// pmlint: guarded-ok(<reason>)`.
//!
//! Two special access shapes encode invariants a plain "lock held" check
//! cannot: `LockedField` requires every syntactic use of a lock-wrapped
//! field to go through its lock methods (so `data_ptr()` escape hatches
//! need an explicit waiver), and `StashWrite` enforces the stash-mutation
//! invariant — a stash bucket's write lock may only be taken while a
//! strictly-earlier home-bucket (`BUCKET_ENTRIES`) guard is still held.
//!
//! # R11 — atomic-protocol
//!
//! R6 audits fence pairing for a fixed set of helpers; R11 generalizes
//! it: **every** atomic field in scope gets a declared protocol class in
//! [`ATOMIC_PROTOCOLS`], and every load/store/RMW site is checked against
//! the class's minimum orderings:
//!
//! * `CounterRelaxed` — pure statistics / tickets; any ordering.
//! * `ReleasePublish` — publishes data written before the store: loads
//!   need Acquire+, stores Release+, RMWs Release/AcqRel/SeqCst.
//! * `SeqlockVersion` — version words: loads Acquire+, writes AcqRel+.
//! * `StickyFlag` — one-way flags observed by spinning readers: loads
//!   Acquire+, stores Release+, RMWs Release+.
//! * `SeqCstSync` — epoch-style global synchronization; SeqCst only.
//!
//! `Relaxed` loads are additionally allowed inside the audited
//! fence-paired helpers (the same `RELAXED_ALLOWLIST_FNS` R3 trusts). An
//! atomic field *declaration* with no table entry is itself a finding, so
//! new atomics cannot dodge review. Waiver:
//! `// pmlint: atomic-ok(<reason>)`.
//!
//! Both rules feed the pattern-liveness audit: every table entry must
//! match at least one site (or declaration) in the workspace, so a rename
//! that kills a pattern fails CI instead of silently disabling the rule.

use crate::graph::{
    receiver_chain, receiver_field, scan_calls, CallKind, FileLex, FnId, Workspace,
};
use crate::lexer::contains_word;
use crate::locks;
use crate::{push_finding, Findings, Liveness, Violation, CALLER_DEPTH};
use crate::{RELAXED_ALLOWLIST_FILES, RELAXED_ALLOWLIST_FNS};
use std::collections::HashSet;

// Lock-class indices into `locks::LOCK_ORDER` (selftest pins the table's
// length and rank agreement with `parking_lot::rank`).
const DIR_RESIZE: usize = 1;
const BUCKET_ENTRIES: usize = 2;
const SHARD: usize = 3;

const LOCK_METHODS: &[&str] = &["lock", "try_lock"];
const RW_METHODS: &[&str] = &["read", "write", "try_read", "try_write"];

/// Atomic write/RMW method names (the mutation half of R10's
/// `AtomicWrite` and R11's store/RMW site kinds).
const ATOMIC_WRITE_METHODS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// How a guarded field is accessed (what R10 must see covered).
#[derive(Debug)]
enum Access {
    /// `field.store(..)` / `field.fetch_*(..)` — the publish side of an
    /// atomic whose mutations are serialized by a lock.
    AtomicWrite,
    /// Plain `x.field = …` assignment.
    Assign,
    /// Named mutating methods on the field (e.g. `g.art.insert(..)`).
    Methods(&'static [&'static str]),
    /// The field *is* a lock: every syntactic use must go through one of
    /// these methods (`data_ptr()` doors need a waiver). `is_static`
    /// matches a bare `GARBAGE`-style static instead of `.field`.
    LockedField {
        methods: &'static [&'static str],
        is_static: bool,
    },
    /// A `.table.write()` on a *stash* bucket: legal only while a
    /// strictly-earlier home-bucket guard is still held.
    StashWrite,
}

/// One guarded-by declaration.
struct GuardRule {
    krate: &'static str,
    /// File-name filter (`None` = any file of the crate).
    file: Option<&'static str>,
    field: &'static str,
    /// Lock classes that cover the access (any one suffices).
    classes: &'static [usize],
    access: Access,
    rationale: &'static str,
}

/// The guarded-by table (DESIGN.md §8). Scoped mirrors of the module-doc
/// invariants in `dir.rs`, `epalloc`, `ebr`, `pm` and `server`.
const GUARDED_BY: &[GuardRule] = &[
    // --- hart/dir.rs: directory publish + migration protocol ---
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "current",
        classes: &[DIR_RESIZE],
        access: Access::AtomicWrite,
        rationale: "the current-table pointer publishes only under the resize lock",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "old",
        classes: &[DIR_RESIZE],
        access: Access::AtomicWrite,
        rationale: "old-table demotion/retirement is serialized by the resize lock",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "migrated",
        classes: &[BUCKET_ENTRIES],
        access: Access::AtomicWrite,
        rationale: "a bucket's drained flag is set under its own write lock \
                    (exactly-once via the locked double-check)",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "overflow",
        classes: &[BUCKET_ENTRIES],
        access: Access::AtomicWrite,
        rationale: "the sticky overflow bit is set under the home bucket's \
                    write lock, after the stash entry installs",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "migrated_count",
        classes: &[BUCKET_ENTRIES],
        access: Access::AtomicWrite,
        rationale: "the drained-buckets counter increments under the drained \
                    bucket's write lock (symmetry audit relies on it)",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "scan_gen",
        classes: &[BUCKET_ENTRIES],
        access: Access::AtomicWrite,
        rationale: "the scan-cache generation bumps before the mutating \
                    bucket guard drops, so stale cached lists retire",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "entries",
        classes: &[BUCKET_ENTRIES],
        access: Access::AtomicWrite,
        rationale: "the directory entry counter moves with the bucket \
                    mutation it mirrors, under that bucket's write lock",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "version",
        classes: &[SHARD, BUCKET_ENTRIES],
        access: Access::AtomicWrite,
        rationale: "seqlock versions (shard and bucket) only move inside a \
                    write section, i.e. under the owning write lock",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "table",
        classes: &[BUCKET_ENTRIES],
        access: Access::StashWrite,
        rationale: "stash-mutation invariant: a stash bucket's write lock is \
                    only taken while the home bucket's guard is still held",
    },
    // --- hart, any file: shard-guard-protected state ---
    GuardRule {
        krate: "hart",
        file: None,
        field: "dead",
        classes: &[SHARD],
        access: Access::Assign,
        rationale: "the shard tombstone flips inside a write section so \
                    concurrent optimistic readers revalidate away from it",
    },
    GuardRule {
        krate: "hart",
        file: None,
        field: "art",
        classes: &[SHARD],
        access: Access::Methods(&["insert", "remove"]),
        rationale: "ART mutations happen only inside a shard write section \
                    (write_observed / open_write_section)",
    },
    // --- lock-wrapped fields: every use goes through the lock ---
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "resize",
        classes: &[DIR_RESIZE],
        access: Access::LockedField {
            methods: LOCK_METHODS,
            is_static: false,
        },
        rationale: "the resize mutex has no raw door",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "scan_cache",
        classes: &[],
        access: Access::LockedField {
            methods: RW_METHODS,
            is_static: false,
        },
        rationale: "the scan cache has no raw door",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "table",
        classes: &[BUCKET_ENTRIES],
        access: Access::LockedField {
            methods: RW_METHODS,
            is_static: false,
        },
        rationale: "bucket tables are only reached through their RwLock; the \
                    validated raw probe door is an audited waiver",
    },
    GuardRule {
        krate: "hart",
        file: Some("dir.rs"),
        field: "inner",
        classes: &[SHARD],
        access: Access::LockedField {
            methods: RW_METHODS,
            is_static: false,
        },
        rationale: "shard interiors are only reached through their RwLock; \
                    the validated raw traversal door is an audited waiver",
    },
    GuardRule {
        krate: "epalloc",
        file: Some("epalloc.rs"),
        field: "classes",
        classes: &[],
        access: Access::LockedField {
            methods: LOCK_METHODS,
            is_static: false,
        },
        rationale: "per-class allocator state has no raw door",
    },
    GuardRule {
        krate: "epalloc",
        file: Some("logs.rs"),
        field: "free",
        classes: &[],
        access: Access::LockedField {
            methods: LOCK_METHODS,
            is_static: false,
        },
        rationale: "the micro-log slot free list has no raw door",
    },
    GuardRule {
        krate: "ebr",
        file: Some("lib.rs"),
        field: "GARBAGE",
        classes: &[],
        access: Access::LockedField {
            methods: LOCK_METHODS,
            is_static: true,
        },
        rationale: "the deferred-drop bag has no raw door",
    },
    GuardRule {
        krate: "pm",
        file: Some("group.rs"),
        field: "state",
        classes: &[],
        access: Access::LockedField {
            methods: LOCK_METHODS,
            is_static: false,
        },
        rationale: "group-commit batch state has no raw door",
    },
    GuardRule {
        krate: "server",
        file: Some("lib.rs"),
        field: "conns",
        classes: &[],
        access: Access::LockedField {
            methods: LOCK_METHODS,
            is_static: false,
        },
        rationale: "the connection registry (SERVER_CONNS) has no raw door",
    },
];

/// Guard-typed parameter/return patterns: a function whose *header*
/// names the guard type holds the class for its whole body.
struct GuardParam {
    type_name: &'static str,
    /// Second word that must co-occur in the header (disambiguates the
    /// generic guard types by their payload).
    also: Option<&'static str>,
    class: usize,
}

const GUARD_PARAMS: &[GuardParam] = &[
    GuardParam {
        type_name: "ShardWriteGuard",
        also: None,
        class: SHARD,
    },
    GuardParam {
        type_name: "RwLockWriteGuard",
        also: Some("ShardInner"),
        class: SHARD,
    },
    GuardParam {
        type_name: "RwLockWriteGuard",
        also: Some("BucketTable"),
        class: BUCKET_ENTRIES,
    },
];

/// Guard wrapper impls: methods of these types run with the class held.
struct GuardImpl {
    type_name: &'static str,
    class: usize,
}

const GUARD_IMPLS: &[GuardImpl] = &[GuardImpl {
    type_name: "ShardWriteGuard",
    class: SHARD,
}];

/// R11 protocol classes (minimum orderings per site kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    CounterRelaxed,
    ReleasePublish,
    SeqlockVersion,
    StickyFlag,
    SeqCstSync,
}

/// One atomic-protocol declaration: the named fields of (crate, file)
/// follow `proto`.
struct AtomicDecl {
    krate: &'static str,
    file: &'static str,
    fields: &'static [&'static str],
    proto: Proto,
}

/// Every atomic field in R11 scope, by protocol class. Tuple-struct
/// payloads declare as field `"0"`. An atomic field declaration not
/// listed here is an R11 finding.
const ATOMIC_PROTOCOLS: &[AtomicDecl] = &[
    // --- hart/dir.rs ---
    AtomicDecl {
        krate: "hart",
        file: "dir.rs",
        fields: &["version"],
        proto: Proto::SeqlockVersion,
    },
    AtomicDecl {
        krate: "hart",
        file: "dir.rs",
        fields: &["current", "old", "migrated_count", "scan_gen"],
        proto: Proto::ReleasePublish,
    },
    AtomicDecl {
        krate: "hart",
        file: "dir.rs",
        fields: &["migrated", "overflow"],
        proto: Proto::StickyFlag,
    },
    AtomicDecl {
        krate: "hart",
        file: "dir.rs",
        fields: &["migrate_next", "entries", "grows", "COUNTER"],
        proto: Proto::CounterRelaxed,
    },
    // --- ebr ---
    AtomicDecl {
        krate: "ebr",
        file: "lib.rs",
        fields: &["EPOCH"],
        proto: Proto::SeqCstSync,
    },
    AtomicDecl {
        krate: "ebr",
        file: "lib.rs",
        // PaddedSlot(AtomicU64): pin publishes the observed epoch.
        fields: &["0"],
        proto: Proto::ReleasePublish,
    },
    // --- server ---
    AtomicDecl {
        krate: "server",
        file: "lib.rs",
        fields: &["stop"],
        proto: Proto::StickyFlag,
    },
    AtomicDecl {
        krate: "server",
        file: "lib.rs",
        fields: &[
            "inflight",
            "connections_total",
            "connections_active",
            "requests_total",
            "busy_rejections",
            "inflight_peak",
            "proto_errors",
        ],
        proto: Proto::CounterRelaxed,
    },
    // --- pm ---
    AtomicDecl {
        krate: "pm",
        file: "pool.rs",
        fields: &["persist_fuse", "persist_seq"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "pm",
        file: "stats.rs",
        fields: &[
            "persist_calls",
            "lines_flushed",
            "fences",
            "read_lines",
            "read_misses",
            "raw_allocs",
            "raw_frees",
            "bytes_in_use",
            "bytes_peak",
            "write_extra_ns",
            "read_extra_ns",
            "alloc_extra_ns",
            "persists_deferred",
            "group_flushes",
        ],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "pm",
        file: "cache.rs",
        fields: &["tags", "cursors"],
        proto: Proto::CounterRelaxed,
    },
    // --- obs ---
    AtomicDecl {
        krate: "obs",
        file: "recorder.rs",
        fields: &["scan_truncated", "resize_started_at_ns", "PHASE_SEQ"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "obs",
        file: "counter.rs",
        // Padded(AtomicU64) cells are single-writer sharded counters.
        fields: &["NEXT_SHARD", "0"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "obs",
        file: "hist.rs",
        fields: &["counts", "total", "sum_ns", "max_ns"],
        proto: Proto::CounterRelaxed,
    },
    // --- leaf crates ---
    AtomicDecl {
        krate: "epalloc",
        file: "epalloc.rs",
        fields: &["live"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "art",
        file: "simd.rs",
        fields: &["MODE"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "cli",
        file: "lib.rs",
        // Metrics-dumper shutdown flag: Release store, Acquire spin.
        fields: &["stop"],
        proto: Proto::StickyFlag,
    },
    AtomicDecl {
        krate: "fptree",
        file: "tree.rs",
        fields: &["len"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "artcow",
        file: "tree.rs",
        fields: &["len"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "woart",
        file: "tree.rs",
        fields: &["len"],
        proto: Proto::CounterRelaxed,
    },
    AtomicDecl {
        krate: "wort",
        file: "tree.rs",
        fields: &["len"],
        proto: Proto::CounterRelaxed,
    },
];

/// Crates outside R11 scope: vendored/stub dependencies and the linter
/// itself (whose sources quote atomic idioms in tables and fixtures).
const R11_EXCLUDED_CRATES: &[&str] = &[
    "parking_lot",
    "loom",
    "criterion",
    "proptest",
    "rand",
    "pmlint",
];

/// The atomic primitive type tokens whose field declarations R11 audits.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

fn op_kind(name: &str) -> Option<OpKind> {
    if name == "load" {
        Some(OpKind::Load)
    } else if name == "store" {
        Some(OpKind::Store)
    } else if ATOMIC_WRITE_METHODS.contains(&name) {
        Some(OpKind::Rmw)
    } else {
        None
    }
}

/// Whether `ord` satisfies `proto`'s minimum for a site of `kind`.
fn ordering_allowed(proto: Proto, kind: OpKind, ord: &str) -> bool {
    use OpKind::*;
    use Proto::*;
    match proto {
        CounterRelaxed => true,
        SeqCstSync => ord == "SeqCst",
        ReleasePublish | StickyFlag => match kind {
            Load => matches!(ord, "Acquire" | "AcqRel" | "SeqCst"),
            Store => matches!(ord, "Release" | "SeqCst"),
            Rmw => matches!(ord, "Release" | "AcqRel" | "SeqCst"),
        },
        SeqlockVersion => match kind {
            Load => matches!(ord, "Acquire" | "SeqCst"),
            Store | Rmw => matches!(ord, "AcqRel" | "SeqCst"),
        },
    }
}

/// Byte position of `word` as a whole word in `s`, if any.
fn find_word(s: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(pos) = s[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = s.as_bytes()[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= s.len() || {
            let b = s.as_bytes()[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = end;
    }
    None
}

/// The *first* ordering token in a call's argument tail — the primary
/// ordering of the site (`compare_exchange`'s failure ordering is never
/// stronger in this codebase).
fn first_ordering(tail: &str) -> Option<&'static str> {
    let mut best: Option<(usize, &'static str)> = None;
    for name in ORDERINGS {
        if let Some(p) = find_word(tail, name) {
            if best.is_none_or(|(bp, _)| p < bp) {
                best = Some((p, name));
            }
        }
    }
    best.map(|(_, n)| n)
}

/// Receiver field of a dotted call, joining a line-leading `.method(`
/// with the previous line's trailing expression (rustfmt splits long
/// chains like `self.persist_seq\n    .fetch_add(1, Relaxed)`).
fn site_field(f: &FileLex, lineno: usize, rc: &crate::graph::RawCall) -> String {
    let CallKind::Dotted { receiver } = &rc.kind else {
        return String::new();
    };
    let fld = receiver_field(receiver);
    if !fld.is_empty() {
        return fld;
    }
    if receiver.is_empty() && lineno >= 2 {
        let prev = f.lines[lineno - 2].code.trim_end();
        let ch: Vec<char> = prev.chars().collect();
        let chain = receiver_chain(&ch, ch.len());
        return receiver_field(&chain);
    }
    String::new()
}

/// Lock classes held at (`line`, `col`) of function `fn_idx`: direct
/// still-held acquisitions plus guard-typed parameter/impl discharge.
fn held_at(ws: &Workspace, fi: usize, fn_idx: usize, line: usize, col: usize) -> HashSet<usize> {
    let f = &ws.files[fi];
    let span = &f.st.fns[fn_idx];
    let mut held = HashSet::new();
    for a in locks::direct_acqs(ws, fi, fn_idx) {
        let before = a.line < line || (a.line == line && a.col < col);
        if before && line <= a.hold_to {
            held.insert(a.class);
        }
    }
    let header_end = crate::guards::fn_header_end(f, span);
    for l in span.start..=header_end {
        let code = &f.lines[l - 1].code;
        for gp in GUARD_PARAMS {
            if contains_word(code, gp.type_name)
                && gp.also.is_none_or(|also| contains_word(code, also))
            {
                held.insert(gp.class);
            }
        }
    }
    if let Some(q) = span.qualifier.as_deref() {
        for gi in GUARD_IMPLS {
            if gi.type_name == q {
                held.insert(gi.class);
            }
        }
    }
    held
}

/// True when `target` has at least one non-test caller and *every*
/// non-test caller holds one of `classes` at its call site — lexically
/// or, bounded by depth, through its own callers. Conservative on
/// address-taken functions, unresolvable callers, module-scope call
/// sites, and recursion (the same shape as R1's `callers_persist`).
fn callers_hold(
    ws: &Workspace,
    target: FnId,
    classes: &[usize],
    depth: usize,
    path: &mut HashSet<FnId>,
) -> bool {
    if depth >= CALLER_DEPTH || !path.insert(target) {
        return false;
    }
    let result = (|| {
        let name = &ws.span(target).name;
        if ws.address_taken(name) {
            return false;
        }
        let Some(call_idxs) = ws.callers.get(&target) else {
            return false;
        };
        let mut real_callers = 0usize;
        for &ci in call_idxs {
            let c = &ws.calls[ci];
            let cf = &ws.files[c.file];
            if cf.is_test_line(c.line) {
                continue;
            }
            if c.caller == Some(target) {
                continue;
            }
            real_callers += 1;
            let Some(caller) = c.caller else {
                return false;
            };
            let held = held_at(ws, c.file, caller.idx, c.line, c.col);
            let mut ok = classes.iter().any(|cl| held.contains(cl));
            if !ok {
                ok = callers_hold(ws, caller, classes, depth + 1, path);
            }
            if !ok {
                return false;
            }
        }
        real_callers > 0
    })();
    path.remove(&target);
    result
}

/// Names of the classes a rule accepts, for messages.
fn class_names(classes: &[usize]) -> String {
    classes
        .iter()
        .map(|&c| locks::LOCK_ORDER[c].name)
        .collect::<Vec<_>>()
        .join(" or ")
}

/// Check one guarded access site: the enclosing function (or,
/// transitively, every caller) must hold a required class.
#[allow(clippy::too_many_arguments)]
fn require_guard(
    ws: &Workspace,
    fi: usize,
    lineno: usize,
    col: usize,
    rule: &GuardRule,
    what: &str,
    out: &mut Findings,
) {
    let f = &ws.files[fi];
    let covered = match f.st.fn_idx_at(lineno) {
        Some(fn_idx) => {
            let held = held_at(ws, fi, fn_idx, lineno, col);
            rule.classes.iter().any(|c| held.contains(c)) || {
                let mut path = HashSet::new();
                callers_hold(
                    ws,
                    FnId {
                        file: fi,
                        idx: fn_idx,
                    },
                    rule.classes,
                    0,
                    &mut path,
                )
            }
        }
        None => false,
    };
    if !covered {
        let v = Violation {
            file: f.path.clone(),
            line: lineno,
            rule: "guarded-by",
            msg: format!(
                "{what} `{}` without holding {} ({}); take the covering lock \
                 (directly or in every caller) or waive with \
                 `// pmlint: guarded-ok(<reason>)`",
                rule.field,
                class_names(rule.classes),
                rule.rationale
            ),
        };
        push_finding(out, &f.lines, lineno, "pmlint: guarded-ok(", v);
    }
}

/// Plain-assignment sites of `.field = …` on one line (word-bounded;
/// `==`, `=>`, `!=`, `<=`, `>=` are not assignments).
fn assign_sites(code: &str, field: &str) -> Vec<usize> {
    let ch: Vec<char> = code.chars().collect();
    let pat: Vec<char> = field.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + pat.len() < ch.len() {
        if ch[i] != '.' || !ch[i + 1..].starts_with(&pat[..]) {
            i += 1;
            continue;
        }
        let end = i + 1 + pat.len();
        let boundary = ch
            .get(end)
            .is_none_or(|c| !c.is_alphanumeric() && *c != '_');
        if boundary {
            let mut j = end;
            while j < ch.len() && ch[j].is_whitespace() {
                j += 1;
            }
            if ch.get(j) == Some(&'=') && !matches!(ch.get(j + 1), Some('=') | Some('>')) {
                out.push(i + 1);
            }
        }
        i = end;
    }
    out
}

/// Skip a balanced `(..)`/`[..]` group starting at `open`; returns the
/// index just past the closer.
fn skip_group(ch: &[char], open: usize) -> usize {
    let (o, c) = if ch[open] == '(' {
        ('(', ')')
    } else {
        ('[', ']')
    };
    let mut depth = 0i32;
    let mut k = open;
    while k < ch.len() {
        if ch[k] == o {
            depth += 1;
        } else if ch[k] == c {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    ch.len()
}

/// Occurrences of a lock-wrapped `field` on one line, each classified as
/// going through an allowed lock method (`true`) or not (`false`).
/// Declaration positions (`field:`), imports, and same-named method
/// calls (`.field(`) are skipped. `next_line` resolves chains rustfmt
/// split after the field.
fn locked_field_sites(
    code: &str,
    field: &str,
    methods: &[&str],
    is_static: bool,
    next_line: Option<&str>,
) -> Vec<(usize, bool)> {
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return Vec::new();
    }
    let ch: Vec<char> = code.chars().collect();
    let pat: Vec<char> = field.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + pat.len() <= ch.len() {
        if !ch[i..].starts_with(&pat[..]) {
            i += 1;
            continue;
        }
        let start = i;
        let end = i + pat.len();
        i = end;
        let before = start.checked_sub(1).map(|k| ch[k]);
        if before.is_some_and(|b| b.is_alphanumeric() || b == '_') {
            continue;
        }
        if ch
            .get(end)
            .is_some_and(|a| a.is_alphanumeric() || *a == '_')
        {
            continue;
        }
        if is_static {
            // A `.field` access belongs to some struct, not the static.
            if before == Some('.') {
                continue;
            }
        } else if before != Some('.') {
            continue;
        }
        match ch.get(end) {
            Some(':') => continue, // declaration / struct-literal init
            Some('(') => continue, // same-named method call, not the field
            _ => {}
        }
        // Walk past index/call groups to the next `.method(`.
        let mut j = end;
        loop {
            while j < ch.len() && ch[j].is_whitespace() {
                j += 1;
            }
            match ch.get(j) {
                Some('[') | Some('(') => j = skip_group(&ch, j),
                _ => break,
            }
        }
        let ok = if ch.get(j) == Some(&'.') {
            method_at(&ch, j + 1, methods)
        } else if j >= ch.len() {
            // Chain continues on the next line (`.lock()` after rustfmt).
            next_line
                .map(|nl| {
                    let nch: Vec<char> = nl.trim_start().chars().collect();
                    nch.first() == Some(&'.') && method_at(&nch, 1, methods)
                })
                .unwrap_or(false)
        } else {
            false
        };
        out.push((start, ok));
    }
    out
}

/// True when an identifier at `ch[at..]` is one of `methods` followed by
/// an opening paren.
fn method_at(ch: &[char], at: usize, methods: &[&str]) -> bool {
    let mut me = at;
    while me < ch.len() && (ch[me].is_alphanumeric() || ch[me] == '_') {
        me += 1;
    }
    let m: String = ch[at..me].iter().collect();
    ch.get(me) == Some(&'(') && methods.contains(&m.as_str())
}

/// R10 driver. Returns per-`GUARDED_BY`-entry site counts (liveness).
fn rule_guarded_by(ws: &Workspace, out: &mut Findings) -> Vec<usize> {
    let mut hits = vec![0usize; GUARDED_BY.len()];
    for (fi, f) in ws.files.iter().enumerate() {
        if f.is_test_path() {
            continue;
        }
        let file_name = f.file_name().to_string();
        let applicable: Vec<usize> = GUARDED_BY
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.krate == f.crate_name && r.file.is_none_or(|fname| fname == file_name)
            })
            .map(|(i, _)| i)
            .collect();
        if applicable.is_empty() {
            continue;
        }
        for (li, line) in f.lines.iter().enumerate() {
            let lineno = li + 1;
            if f.is_test_line(lineno) {
                continue;
            }
            let code = &line.code;
            for &ri in &applicable {
                let rule = &GUARDED_BY[ri];
                match &rule.access {
                    Access::AtomicWrite => {
                        for rc in scan_calls(code) {
                            if !ATOMIC_WRITE_METHODS.contains(&rc.name.as_str()) {
                                continue;
                            }
                            if site_field(f, lineno, &rc) != rule.field {
                                continue;
                            }
                            let tail: String = code.chars().skip(rc.col).take(150).collect();
                            if first_ordering(&tail).is_none() {
                                continue;
                            }
                            hits[ri] += 1;
                            require_guard(ws, fi, lineno, rc.col, rule, "atomic write to", out);
                        }
                    }
                    Access::Assign => {
                        for col in assign_sites(code, rule.field) {
                            hits[ri] += 1;
                            require_guard(ws, fi, lineno, col, rule, "assignment to", out);
                        }
                    }
                    Access::Methods(ms) => {
                        for rc in scan_calls(code) {
                            if !ms.contains(&rc.name.as_str()) {
                                continue;
                            }
                            if site_field(f, lineno, &rc) != rule.field {
                                continue;
                            }
                            hits[ri] += 1;
                            require_guard(ws, fi, lineno, rc.col, rule, "mutation of", out);
                        }
                    }
                    Access::LockedField { methods, is_static } => {
                        let next_line = f.lines.get(lineno).map(|l| l.code.as_str());
                        for (col, ok) in
                            locked_field_sites(code, rule.field, methods, *is_static, next_line)
                        {
                            hits[ri] += 1;
                            if !ok {
                                let v = Violation {
                                    file: f.path.clone(),
                                    line: lineno,
                                    rule: "guarded-by",
                                    msg: format!(
                                        "`{}` used other than through {:?} ({}); go through \
                                         the lock or waive with \
                                         `// pmlint: guarded-ok(<reason>)`",
                                        rule.field, methods, rule.rationale
                                    ),
                                };
                                push_finding(out, &f.lines, lineno, "pmlint: guarded-ok(", v);
                                let _ = col;
                            }
                        }
                    }
                    Access::StashWrite => {
                        for rc in scan_calls(code) {
                            if rc.name != "write" && rc.name != "try_write" {
                                continue;
                            }
                            let CallKind::Dotted { receiver } = &rc.kind else {
                                continue;
                            };
                            if receiver_field(receiver) != "table" {
                                continue;
                            }
                            let Some(base) = receiver.trim_end().strip_suffix(".table") else {
                                continue;
                            };
                            let Some(fn_idx) = f.st.fn_idx_at(lineno) else {
                                continue;
                            };
                            let span = &f.st.fns[fn_idx];
                            let from_stash =
                                |s: &str| s.contains("stash_bucket(") || s.contains(".stash[");
                            let is_stash = from_stash(base)
                                || (!base.is_empty()
                                    && base.chars().all(|c| c.is_alphanumeric() || c == '_')
                                    && {
                                        let p1 = format!("let {base} ");
                                        let p2 = format!("let mut {base} ");
                                        f.lines[span.start - 1..lineno - 1].iter().any(|l| {
                                            (l.code.contains(&p1) || l.code.contains(&p2))
                                                && from_stash(&l.code)
                                        })
                                    });
                            if !is_stash {
                                continue;
                            }
                            hits[ri] += 1;
                            let held_earlier = locks::direct_acqs(ws, fi, fn_idx).iter().any(|a| {
                                a.class == BUCKET_ENTRIES
                                    && (a.line < lineno || (a.line == lineno && a.col < rc.col))
                                    && lineno <= a.hold_to
                            });
                            let covered = held_earlier || {
                                let mut path = HashSet::new();
                                callers_hold(
                                    ws,
                                    FnId {
                                        file: fi,
                                        idx: fn_idx,
                                    },
                                    &[BUCKET_ENTRIES],
                                    0,
                                    &mut path,
                                )
                            };
                            if !covered {
                                let v = Violation {
                                    file: f.path.clone(),
                                    line: lineno,
                                    rule: "guarded-by",
                                    msg: format!(
                                        "stash-bucket write lock taken without a home-bucket \
                                         guard already held ({}); take the home bucket's \
                                         write lock first or waive with \
                                         `// pmlint: guarded-ok(<reason>)`",
                                        rule.rationale
                                    ),
                                };
                                push_finding(out, &f.lines, lineno, "pmlint: guarded-ok(", v);
                            }
                        }
                    }
                }
            }
        }
    }
    hits
}

/// True when (`f`, `lineno`) is inside an audited fence-paired helper
/// (the same allowlist R3 trusts for `Relaxed` loads).
fn in_relaxed_allowlist(f: &FileLex, lineno: usize) -> bool {
    RELAXED_ALLOWLIST_FILES.contains(&f.file_name())
        && f.st
            .fn_at(lineno)
            .is_some_and(|s| RELAXED_ALLOWLIST_FNS.contains(&s.name.as_str()))
}

/// Field name of an atomic declaration line, if the line declares one:
/// `version: AtomicU64,` → `version`; `static EPOCH: AtomicU64 = …` →
/// `EPOCH`; `struct Padded(AtomicU64);` → `0`.
fn atomic_decl_field(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    if trimmed.starts_with("let ")
        || trimmed.starts_with("use ")
        || trimmed.starts_with("pub use ")
        || contains_word(trimmed, "fn")
    {
        return None;
    }
    // An atomic primitive type token used as a type (not a `::new` path).
    let is_decl = ATOMIC_TYPES.iter().any(|t| {
        let mut from = 0usize;
        while let Some(at) = find_word(&trimmed[from..], t) {
            let end = from + at + t.len();
            if !trimmed[end..].starts_with("::") {
                return true;
            }
            from = end;
        }
        false
    });
    if !is_decl {
        return None;
    }
    let mut s = trimmed;
    for p in ["pub(crate) ", "pub(super) ", "pub "] {
        if let Some(rest) = s.strip_prefix(p) {
            s = rest;
            break;
        }
    }
    if let Some(rest) = s.strip_prefix("static ") {
        s = rest;
    }
    if let Some(rest) = s.strip_prefix("struct ") {
        // Tuple struct (`struct Padded(AtomicU64);`): field `0`.
        let after = rest.trim_start();
        let name_len = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .count();
        if after[name_len..].starts_with('(') {
            return Some("0".to_string());
        }
        return None;
    }
    let ident: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return None;
    }
    if s[ident.len()..].trim_start().starts_with(':') {
        Some(ident)
    } else {
        None
    }
}

/// R11 driver. Returns per-(decl entry, field) declaration counts
/// (liveness keys).
fn rule_atomic_protocol(ws: &Workspace, out: &mut Findings) -> Vec<Liveness> {
    // (entry index, field index) → count of matching declaration lines.
    let mut decl_hits: Vec<Vec<usize>> = ATOMIC_PROTOCOLS
        .iter()
        .map(|d| vec![0usize; d.fields.len()])
        .collect();
    for f in &ws.files {
        if R11_EXCLUDED_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let file_name = f.file_name().to_string();
        for (li, line) in f.lines.iter().enumerate() {
            let lineno = li + 1;
            if f.is_test_line(lineno) {
                continue;
            }
            let code = &line.code;

            // Declarations: every atomic field must be in the table.
            if let Some(field) = atomic_decl_field(code) {
                let mut declared = false;
                for (di, d) in ATOMIC_PROTOCOLS.iter().enumerate() {
                    if d.krate != f.crate_name || d.file != file_name {
                        continue;
                    }
                    if let Some(pos) = d.fields.iter().position(|&x| x == field) {
                        decl_hits[di][pos] += 1;
                        declared = true;
                    }
                }
                if !declared {
                    let v = Violation {
                        file: f.path.clone(),
                        line: lineno,
                        rule: "atomic-protocol",
                        msg: format!(
                            "atomic field `{field}` has no declared protocol class; add it \
                             to pmlint's ATOMIC_PROTOCOLS table (counter-relaxed-ok, \
                             release-publish, seqlock-version, sticky-flag, or \
                             seqcst-sync) or waive with `// pmlint: atomic-ok(<reason>)`"
                        ),
                    };
                    push_finding(out, &f.lines, lineno, "pmlint: atomic-ok(", v);
                }
            }

            // Sites: each load/store/RMW meets its class minimum.
            for rc in scan_calls(code) {
                let Some(kind) = op_kind(&rc.name) else {
                    continue;
                };
                let field = site_field(f, lineno, &rc);
                if field.is_empty() {
                    continue;
                }
                let tail: String = code.chars().skip(rc.col).take(150).collect();
                let Some(ord) = first_ordering(&tail) else {
                    continue; // not an atomic site (no ordering token)
                };
                let Some(proto) = ATOMIC_PROTOCOLS.iter().find_map(|d| {
                    (d.krate == f.crate_name && d.fields.contains(&field.as_str()))
                        .then_some(d.proto)
                }) else {
                    continue; // let-locals etc.: out of declared scope
                };
                if ord == "Relaxed" && kind == OpKind::Load && in_relaxed_allowlist(f, lineno) {
                    continue;
                }
                if !ordering_allowed(proto, kind, ord) {
                    let v = Violation {
                        file: f.path.clone(),
                        line: lineno,
                        rule: "atomic-protocol",
                        msg: format!(
                            "`{}.{}({ord}, …)` violates the declared {:?} protocol \
                             minimum for this field; strengthen the ordering, move the \
                             load into an audited fence-paired helper, or waive with \
                             `// pmlint: atomic-ok(<reason>)`",
                            field, rc.name, proto
                        ),
                    };
                    push_finding(out, &f.lines, lineno, "pmlint: atomic-ok(", v);
                }
            }
        }
    }
    ATOMIC_PROTOCOLS
        .iter()
        .zip(decl_hits)
        .flat_map(|(d, per_field)| {
            d.fields
                .iter()
                .zip(per_field)
                .map(|(fld, h)| Liveness {
                    table: "ATOMIC_PROTOCOLS",
                    key: format!("{}/{} field={fld} proto={:?}", d.krate, d.file, d.proto),
                    hits: h,
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Per-`GUARD_PARAMS` header-match counts (liveness).
fn guard_param_liveness(ws: &Workspace) -> Vec<Liveness> {
    let mut hits = vec![0usize; GUARD_PARAMS.len()];
    for f in &ws.files {
        for span in &f.st.fns {
            let header_end = crate::guards::fn_header_end(f, span);
            for l in span.start..=header_end {
                let code = &f.lines[l - 1].code;
                for (gi, gp) in GUARD_PARAMS.iter().enumerate() {
                    if contains_word(code, gp.type_name)
                        && gp.also.is_none_or(|also| contains_word(code, also))
                    {
                        hits[gi] += 1;
                    }
                }
            }
        }
    }
    GUARD_PARAMS
        .iter()
        .zip(hits)
        .map(|(gp, h)| Liveness {
            table: "GUARD_PARAMS",
            key: format!(
                "{}{} => {}",
                gp.type_name,
                gp.also.map(|a| format!("<{a}>")).unwrap_or_default(),
                locks::LOCK_ORDER[gp.class].name
            ),
            hits: h,
        })
        .collect()
}

/// Declaration-table sanity: no duplicate (crate, field) across
/// `ATOMIC_PROTOCOLS` (site matching is by crate + field), and every
/// `GUARDED_BY` class index is in range.
pub fn table_sanity() -> Result<(), String> {
    let mut seen: HashSet<(&str, &str)> = HashSet::new();
    for d in ATOMIC_PROTOCOLS {
        for fld in d.fields {
            if !seen.insert((d.krate, fld)) {
                return Err(format!(
                    "ATOMIC_PROTOCOLS declares ({}, {fld}) twice — site matching by \
                     (crate, field) would be ambiguous",
                    d.krate
                ));
            }
        }
    }
    for r in GUARDED_BY {
        for &c in r.classes {
            if c >= locks::LOCK_ORDER.len() {
                return Err(format!(
                    "GUARDED_BY entry for `{}` names lock class {c} out of range",
                    r.field
                ));
            }
        }
    }
    Ok(())
}

/// Run R10 + R11 and return the liveness rows for every declaration
/// table (enforced by `main` and the workspace selftest, *not* here —
/// single-file fixture lints legitimately miss most patterns).
pub(crate) fn run(ws: &Workspace, out: &mut Findings) -> Vec<Liveness> {
    debug_assert!(table_sanity().is_ok(), "{:?}", table_sanity());
    let guarded_hits = rule_guarded_by(ws, out);
    let mut live: Vec<Liveness> = GUARDED_BY
        .iter()
        .zip(guarded_hits)
        .map(|(r, h)| Liveness {
            table: "GUARDED_BY",
            key: format!(
                "{}/{} field={} access={:?}",
                r.krate,
                r.file.unwrap_or("*"),
                r.field,
                r.access
            ),
            hits: h,
        })
        .collect();
    live.extend(rule_atomic_protocol(ws, out));
    live.extend(guard_param_liveness(ws));
    live
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sane() {
        table_sanity().expect("declaration tables well-formed");
    }

    #[test]
    fn ordering_matrix() {
        use OpKind::*;
        use Proto::*;
        assert!(ordering_allowed(CounterRelaxed, Rmw, "Relaxed"));
        assert!(ordering_allowed(ReleasePublish, Store, "Release"));
        assert!(!ordering_allowed(ReleasePublish, Store, "Relaxed"));
        assert!(!ordering_allowed(ReleasePublish, Load, "Relaxed"));
        assert!(ordering_allowed(SeqlockVersion, Rmw, "AcqRel"));
        assert!(!ordering_allowed(SeqlockVersion, Store, "Release"));
        assert!(ordering_allowed(StickyFlag, Rmw, "SeqCst"));
        assert!(!ordering_allowed(SeqCstSync, Load, "Acquire"));
    }

    #[test]
    fn first_ordering_picks_the_primary() {
        assert_eq!(
            first_ordering("compare_exchange(a, b, Ordering::AcqRel, Ordering::Relaxed)"),
            Some("AcqRel")
        );
        assert_eq!(
            first_ordering("store(true, Ordering::Release)"),
            Some("Release")
        );
        assert_eq!(first_ordering("push(x)"), None);
    }

    #[test]
    fn assign_site_extraction() {
        assert_eq!(assign_sites("sg.dead = true;", "dead"), vec![3]);
        assert!(assign_sites("if sg.dead == true {", "dead").is_empty());
        assert!(assign_sites("if sg.dead { x() }", "dead").is_empty());
        assert!(assign_sites("sg.deadline = 3;", "dead").is_empty());
    }

    #[test]
    fn locked_field_site_classification() {
        let sites = locked_field_sites(
            "let g = self.resize.lock();",
            "resize",
            &["lock", "try_lock"],
            false,
            None,
        );
        assert_eq!(sites.len(), 1);
        assert!(sites[0].1);
        let bad = locked_field_sites(
            "let p = self.inner.data_ptr();",
            "inner",
            &["read", "write"],
            false,
            None,
        );
        assert_eq!(bad.len(), 1);
        assert!(!bad[0].1);
        // Declarations and struct-literal inits are not uses.
        assert!(locked_field_sites(
            "resize: Mutex<ResizeState>,",
            "resize",
            &["lock"],
            false,
            None
        )
        .is_empty());
        // Indexed access through the lock is fine.
        let idx = locked_field_sites(
            "let g = self.classes[class.idx()].lock();",
            "classes",
            &["lock"],
            false,
            None,
        );
        assert_eq!(idx.len(), 1);
        assert!(idx[0].1);
        // Split chains resolve through the next line.
        let split = locked_field_sites(
            "let g = self.state",
            "state",
            &["lock"],
            false,
            Some("    .lock();"),
        );
        assert_eq!(split.len(), 1);
        assert!(split[0].1);
    }

    #[test]
    fn atomic_decl_field_extraction() {
        assert_eq!(
            atomic_decl_field("    version: AtomicU64,").as_deref(),
            Some("version")
        );
        assert_eq!(
            atomic_decl_field("static EPOCH: AtomicU64 = AtomicU64::new(3);").as_deref(),
            Some("EPOCH")
        );
        assert_eq!(
            atomic_decl_field("pub struct Padded(AtomicU64);").as_deref(),
            Some("0")
        );
        assert_eq!(
            atomic_decl_field("    stop: Arc<std::sync::atomic::AtomicBool>,").as_deref(),
            Some("stop")
        );
        assert_eq!(
            atomic_decl_field("    tags: Box<[AtomicU64]>,").as_deref(),
            Some("tags")
        );
        // `::new` paths, lets, uses and fns are not declarations.
        assert!(atomic_decl_field("let x = AtomicU64::new(0);").is_none());
        assert!(atomic_decl_field("use std::sync::atomic::AtomicU64;").is_none());
        assert!(atomic_decl_field("fn f(x: &AtomicU64) {").is_none());
    }
}
