//! The guard-dataflow rules: R7 `epoch-escape`, R8 `seqlock-purity`,
//! R9 `durable-ack`.
//!
//! All three rules track *values born under a protection window* — an EBR
//! pin, a seqlock version observation, or a not-yet-durable response
//! frame — through `let` bindings and (boundedly, via the call graph)
//! callees, and flag uses that leave the window without discharging its
//! obligation:
//!
//! * **R7 `epoch-escape`** — a pointer/reference derived from a
//!   PM-resident structure while an EBR guard (or `Directory::protect`
//!   guard) is held must die inside the guard's hold range: returning it,
//!   storing it into a field, `.store()`-publishing it, or sending it to
//!   another thread lets it dangle once the epoch advances. Derivation is
//!   tracked from raw-source expressions (`&*`, `ptr::read_volatile`,
//!   `addr_of!`, `.as_ptr()`, `.data_ptr()`, pointer casts) and from
//!   calls to *deriving* functions — any workspace function whose body
//!   contains a raw source and which returns a value — then propagated
//!   through projection-only `let` bindings (a binding whose RHS calls a
//!   non-deriving function is assumed to launder, e.g. `Arc::clone`).
//!   `unsafe fn`s may return tracked values: their `# Safety` contract
//!   moves the pin obligation to the caller (`probe_raw`/`get_raw`
//!   pattern). Waiver: `// pmlint: epoch-escape-ok(<reason>)`.
//! * **R8 `seqlock-purity`** — an optimistic read section (from a
//!   version-load binding like `let v0 = shard.version()` to the last use
//!   of `v0` or of a validate closure derived from it) must be pure: no
//!   atomic stores/RMWs, no field assignment, no allocation, no lock
//!   acquisition (direct, or transitively through a resolved callee), and
//!   every `return` inside the section must be dominated by a validation
//!   of `v0` (`validate`-token or `== v0`/`!= v0` re-check); a section
//!   that never validates at all is flagged at the load. `return`s of a
//!   `Retry` value are the sanctioned bail-out and exempt. Waiver:
//!   `// pmlint: seqlock-ok(<reason>)`.
//! * **R9 `durable-ack`** — in `crates/server` and `crates/pm/group.rs`,
//!   a write-response frame (born from `write_frame(..)` or an
//!   `item.frame` projection) must not reach an ack sink (`finish(..)` or
//!   a send on a `resp`-named channel) unless a `GroupCommitter::complete`
//!   / `flush_batches` / `persist` covers it between birth and ack;
//!   every `complete(..)` call site must handle the fuse-failure `Err`
//!   (nack) within a few lines or propagate the `Result`; and a
//!   `flush_batches(..)` ok-count must never be discarded (a dropped
//!   count silently swallows a blown persist fuse). Waiver:
//!   `// pmlint: ack-ok(<reason>)`.
//!
//! Like the rest of pmlint these are lexical, line-grained analyses:
//! multi-line RHSs are seen through their first line, match-arm bindings
//! do not propagate taint, and tail-expression escapes are not returns.
//! The seeded fixtures in `fixtures/` pin the supported shapes.

use crate::graph::{scan_calls, CallKind, FileLex, FnId, Workspace};
use crate::lexer::contains_word;
use crate::structure::FnSpan;
use crate::{locks, push_finding, Findings, Violation};
use std::collections::HashSet;

/// Expressions that derive a raw PM/heap address from a protected
/// structure (R7 taint sources).
const RAW_SOURCE_TOKENS: &[&str] = &[
    "&*",
    "read_volatile(",
    "addr_of!",
    "addr_of_mut!",
    ".data_ptr(",
    ".as_ptr(",
    ".as_mut_ptr(",
    " as *const",
    " as *mut",
];

/// Atomic publish/RMW methods forbidden inside a seqlock read section.
const ATOMIC_WRITES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Allocation expressions forbidden inside a seqlock read section: a
/// retry loop that allocates per attempt churns the heap under
/// contention, and an owner born mid-section outlives a failed
/// validation. (Amortized growth of a buffer hoisted *outside* the
/// section — `buf.clear()` + `push` — is the sanctioned shape.)
const ALLOC_TOKENS: &[&str] = &[
    "Box::new(",
    "Arc::new(",
    "Rc::new(",
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "String::new(",
    "String::from(",
    ".to_vec(",
    ".to_string(",
    "format!",
];

/// Per-workspace function facts the dataflow rules key on.
pub(crate) struct FnFacts {
    /// Functions that return a value and contain a raw-source expression:
    /// calls to these derive tracked pointers (R7).
    deriving: HashSet<String>,
    /// Functions that return an EBR-style guard: `pin` itself, plus any
    /// function that calls `pin(..)` and whose return type names a
    /// `Guard` (e.g. `Directory::protect` → `DirGuard`).
    guard_returning: HashSet<String>,
}

/// Last line of a function's signature: the first line whose end-of-line
/// brace depth exceeds the depth just before the definition started.
pub(crate) fn fn_header_end(f: &FileLex, span: &FnSpan) -> usize {
    let base = f.st.depth_end[span.start - 1];
    for l in span.start..=span.end.min(f.st.depth_end.len() - 1) {
        if f.st.depth_end[l] > base {
            return l;
        }
    }
    span.start
}

/// True when `code` contains a call of `name` (per the call scanner, so
/// comments/strings/macros/definitions do not count).
fn has_call(code: &str, name: &str) -> bool {
    scan_calls(code).iter().any(|c| c.name == name)
}

pub(crate) fn collect_fn_facts(ws: &Workspace) -> FnFacts {
    let mut deriving = HashSet::new();
    let mut guard_returning = HashSet::new();
    for f in &ws.files {
        for span in &f.st.fns {
            let hdr_end = fn_header_end(f, span);
            let header: String = f.lines[span.start - 1..hdr_end]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let has_ret = header.contains("->");
            let mut raw = false;
            let mut pins = false;
            for l in &f.lines[span.start - 1..span.end] {
                let c = &l.code;
                if !raw && RAW_SOURCE_TOKENS.iter().any(|t| c.contains(t)) {
                    raw = true;
                }
                if !pins && has_call(c, "pin") {
                    pins = true;
                }
            }
            if has_ret && raw {
                deriving.insert(span.name.clone());
            }
            let ret_ty = header.split("->").nth(1).unwrap_or("");
            if span.name == "pin" || (pins && ret_ty.contains("Guard")) {
                guard_returning.insert(span.name.clone());
            }
        }
    }
    FnFacts {
        deriving,
        guard_returning,
    }
}

fn ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Identifiers bound by a `let` pattern: lowercase-initial names minus
/// keywords. Uppercase-initial segments are enum variants / struct
/// names / type annotations, and a single `:` cuts the pattern at its
/// type ascription (`::` paths pass through).
fn pattern_idents(pat: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = pat.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b':' {
            if i + 1 < b.len() && b[i + 1] == b':' {
                i += 2;
                continue;
            }
            break; // type ascription: the rest is a type, not bindings
        }
        if b[i].is_ascii_alphabetic() || b[i] == b'_' {
            let start = i;
            while i < b.len() && ident_byte(b[i]) {
                i += 1;
            }
            let id = &pat[start..i];
            let keyword = matches!(id, "mut" | "ref" | "box" | "_");
            let type_like = id.chars().next().is_some_and(|c| c.is_uppercase());
            // An ident directly followed by `::` is a path segment
            // (`mpsc::SendError(item)`), not a binding.
            let path_seg = i + 1 < b.len() && b[i] == b':' && b[i + 1] == b':';
            if !keyword && !type_like && !path_seg {
                out.push(id.to_string());
            }
            continue;
        }
        i += 1;
    }
    out
}

/// Split a `let`/`if let`/`while let` line into (bound idents, RHS text).
pub(crate) fn parse_let(code: &str) -> Option<(Vec<String>, String)> {
    let b = code.as_bytes();
    let mut from = 0usize;
    let at = loop {
        let p = code[from..].find("let")? + from;
        let before_ok = p == 0 || !ident_byte(b[p - 1]);
        let after_ok = p + 3 >= b.len() || !ident_byte(b[p + 3]);
        if before_ok && after_ok {
            break p;
        }
        from = p + 3;
    };
    let rest = &code[at + 3..];
    let rb = rest.as_bytes();
    let mut i = 0usize;
    let eq = loop {
        let p = rest[i..].find('=')? + i;
        let prev = if p > 0 { rb[p - 1] } else { b' ' };
        let next = if p + 1 < rb.len() { rb[p + 1] } else { b' ' };
        let op = matches!(
            prev,
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        );
        if !op && next != b'=' && next != b'>' {
            break p;
        }
        i = p + 1;
    };
    let idents = pattern_idents(&rest[..eq]);
    if idents.is_empty() {
        return None;
    }
    Some((idents, rest[eq + 1..].to_string()))
}

/// Split a non-`let` assignment statement into (LHS, RHS), skipping
/// comparison/fat-arrow/compound operators.
fn assignment_parts(code: &str) -> Option<(String, String)> {
    let t = code.trim_start();
    if t.starts_with("let ") || t.starts_with("if let") || t.starts_with("while let") {
        return None;
    }
    let b = code.as_bytes();
    let mut i = 0usize;
    loop {
        let p = code[i..].find('=')? + i;
        let prev = if p > 0 { b[p - 1] } else { b' ' };
        let next = if p + 1 < b.len() { b[p + 1] } else { b' ' };
        let op = matches!(
            prev,
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        );
        if !op && next != b'=' && next != b'>' {
            return Some((code[..p].to_string(), code[p + 1..].to_string()));
        }
        i = p + 1;
    }
}

/// True when `rhs` contains a raw-source token or a call to a deriving
/// function (R7 taint birth).
fn is_raw_source(rhs: &str, facts: &FnFacts) -> bool {
    if RAW_SOURCE_TOKENS.iter().any(|t| rhs.contains(t)) {
        return true;
    }
    scan_calls(rhs)
        .iter()
        .any(|c| facts.deriving.contains(&c.name))
}

/// True when taint may flow through this RHS: it is a projection of the
/// tracked value — every call in it (if any) is itself deriving, so
/// nothing launders the pointer into an owned value (`Arc::clone`,
/// `find_in`, …).
fn propagates(rhs: &str, facts: &FnFacts) -> bool {
    scan_calls(rhs)
        .iter()
        .all(|c| facts.deriving.contains(&c.name))
}

/// R7 driver.
pub(crate) fn rule_epoch_escape(ws: &Workspace, facts: &FnFacts, out: &mut Findings) {
    const MARK: &str = "pmlint: epoch-escape-ok(";
    for (fi, f) in ws.files.iter().enumerate() {
        if f.is_test_path() {
            continue;
        }
        for (idx, span) in f.st.fns.iter().enumerate() {
            let hdr_end = fn_header_end(f, span);
            let header: String = f.lines[span.start - 1..hdr_end]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let caller_owns_pin = header.contains("unsafe fn");
            // Guard bindings in this function.
            for g_line in span.start..=span.end {
                if f.st.fn_idx_at(g_line) != Some(idx) || f.is_test_line(g_line) {
                    continue;
                }
                let code = &f.lines[g_line - 1].code;
                let Some((g_idents, g_rhs)) = parse_let(code) else {
                    continue;
                };
                let is_guard = scan_calls(&g_rhs)
                    .iter()
                    .any(|c| c.name == "pin" || facts.guard_returning.contains(&c.name));
                if !is_guard {
                    continue;
                }
                let g_ident = g_idents[0].clone();
                let hold_to = locks::hold_end(ws, fi, g_line, Some(&g_ident), span.end);
                let mut tracked: Vec<String> = Vec::new();
                let mut flagged: HashSet<(usize, &'static str)> = HashSet::new();
                for l in g_line + 1..=span.end {
                    if f.st.fn_idx_at(l) != Some(idx) || f.is_test_line(l) {
                        continue;
                    }
                    let code = &f.lines[l - 1].code;
                    let inside = l <= hold_to;
                    let is_let = parse_let(code).is_some();
                    if inside {
                        if let Some((idents, rhs)) = parse_let(code) {
                            let mentions = tracked.iter().any(|t| contains_word(&rhs, t));
                            if is_raw_source(&rhs, facts) || (mentions && propagates(&rhs, facts)) {
                                for id in idents {
                                    if id != g_ident && !tracked.contains(&id) {
                                        tracked.push(id);
                                    }
                                }
                            }
                        }
                    }
                    let mentioned: Vec<&String> =
                        tracked.iter().filter(|t| contains_word(code, t)).collect();
                    if mentioned.is_empty() {
                        continue;
                    }
                    let mut flag = |kind: &'static str, msg: String| {
                        if flagged.insert((l, kind)) {
                            let v = Violation {
                                file: f.path.clone(),
                                line: l,
                                rule: "epoch-escape",
                                msg,
                            };
                            push_finding(out, &f.lines, l, MARK, v);
                        }
                    };
                    let t0 = mentioned[0].clone();
                    if !inside {
                        flag(
                            "after",
                            format!(
                                "`{t0}` was derived under guard `{g_ident}` \
                                 (pinned at line {g_line}, released by line \
                                 {hold_to}) and is used after the guard drops; \
                                 re-pin or shorten the value's life, or waive \
                                 with `// pmlint: epoch-escape-ok(<reason>)`"
                            ),
                        );
                        continue;
                    }
                    let trimmed = code.trim_start();
                    if (trimmed.starts_with("return ") || code.contains(" return "))
                        && !caller_owns_pin
                    {
                        flag(
                            "return",
                            format!(
                                "returns `{t0}`, derived under guard `{g_ident}` \
                                 (line {g_line}): the pointer outlives the pin. \
                                 Copy the pointee out, make the fn `unsafe` with \
                                 a caller-holds-pin contract, or waive with \
                                 `// pmlint: epoch-escape-ok(<reason>)`"
                            ),
                        );
                    }
                    if !is_let {
                        if let Some((lhs, rhs)) = assignment_parts(code) {
                            let stores = mentioned.iter().any(|t| contains_word(&rhs, t));
                            let lhs_t = lhs.trim();
                            if stores && (lhs_t.contains('.') || lhs_t.starts_with('*')) {
                                flag(
                                    "store",
                                    format!(
                                        "stores `{t0}` (derived under guard \
                                         `{g_ident}`, line {g_line}) into \
                                         `{lhs_t}`: the cached pointer dangles \
                                         once the epoch advances; re-derive it \
                                         under a fresh pin, or waive with \
                                         `// pmlint: epoch-escape-ok(<reason>)`"
                                    ),
                                );
                            }
                        }
                    }
                    for rc in scan_calls(code) {
                        let publishes = matches!(rc.name.as_str(), "store" | "send" | "spawn");
                        if !publishes {
                            continue;
                        }
                        // The tracked ident must appear past the call name
                        // (i.e. inside the argument list).
                        let tail: String = code.chars().skip(rc.col).collect();
                        if mentioned.iter().any(|t| contains_word(&tail, t)) {
                            flag(
                                "publish",
                                format!(
                                    "passes `{t0}` (derived under guard \
                                     `{g_ident}`, line {g_line}) to `{}`: it \
                                     escapes the pinned epoch; copy the data \
                                     out first, or waive with \
                                     `// pmlint: epoch-escape-ok(<reason>)`",
                                    rc.name
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// R8 driver.
pub(crate) fn rule_seqlock_purity(ws: &Workspace, sets: &locks::LockSets, out: &mut Findings) {
    const MARK: &str = "pmlint: seqlock-ok(";
    for (fi, f) in ws.files.iter().enumerate() {
        if f.is_test_path() {
            continue;
        }
        let file_name = f.file_name().to_string();
        for (idx, span) in f.st.fns.iter().enumerate() {
            for bind in span.start..=span.end {
                if f.st.fn_idx_at(bind) != Some(idx) || f.is_test_line(bind) {
                    continue;
                }
                let code = &f.lines[bind - 1].code;
                let Some((idents, rhs)) = parse_let(code) else {
                    continue;
                };
                let reads_version = rhs.contains("version")
                    && (rhs.contains(".load(") || rhs.contains("version()"));
                let write_side = ["fetch_add", "fetch_sub", ".swap(", ".store("]
                    .iter()
                    .any(|t| rhs.contains(t));
                if !reads_version || write_side {
                    continue;
                }
                let v = idents[0].clone();
                // Tokens whose uses delimit the read section: the version
                // binding plus any validate closure derived from it.
                let mut tokens = vec![v.clone()];
                for l in bind + 1..=span.end {
                    if f.st.fn_idx_at(l) != Some(idx) {
                        continue;
                    }
                    if let Some((ids, r)) = parse_let(&f.lines[l - 1].code) {
                        if contains_word(&r, &v) && r.contains("validate") {
                            tokens.extend(ids);
                        }
                    }
                }
                let mut section_end = bind;
                for l in bind + 1..=span.end {
                    if f.st.fn_idx_at(l) != Some(idx) {
                        continue;
                    }
                    let c = &f.lines[l - 1].code;
                    if tokens.iter().any(|t| contains_word(c, t)) {
                        section_end = l;
                    }
                }
                if section_end == bind {
                    continue; // observation never used: not a read section
                }
                let eq_pat = format!("== {v}");
                let ne_pat = format!("!= {v}");
                let is_validate = |c: &str| {
                    contains_word(c, "validate") || c.contains(&eq_pat) || c.contains(&ne_pat)
                };
                let validate_lines: Vec<usize> = (bind + 1..=section_end)
                    .filter(|&l| {
                        f.st.fn_idx_at(l) == Some(idx) && is_validate(&f.lines[l - 1].code)
                    })
                    .collect();
                if validate_lines.is_empty() {
                    let viol = Violation {
                        file: f.path.clone(),
                        line: bind,
                        rule: "seqlock-purity",
                        msg: format!(
                            "version observation `{v}` is consumed through line \
                             {section_end} but never re-validated; data copied \
                             in this section may be torn — add a \
                             `validate`/`== {v}` re-check before trusting it, \
                             or waive with `// pmlint: seqlock-ok(<reason>)`"
                        ),
                    };
                    push_finding(out, &f.lines, bind, MARK, viol);
                    continue;
                }
                let mut flagged: HashSet<(usize, &'static str)> = HashSet::new();
                for l in bind + 1..=section_end {
                    if f.st.fn_idx_at(l) != Some(idx) || f.is_test_line(l) {
                        continue;
                    }
                    let c = &f.lines[l - 1].code;
                    let mut flag = |kind: &'static str, msg: String| {
                        if flagged.insert((l, kind)) {
                            let viol = Violation {
                                file: f.path.clone(),
                                line: l,
                                rule: "seqlock-purity",
                                msg,
                            };
                            push_finding(out, &f.lines, l, MARK, viol);
                        }
                    };
                    let trimmed = c.trim_start();
                    if (trimmed.starts_with("return ") || c.contains(" return "))
                        && !c.contains("Retry")
                        && !validate_lines.iter().any(|&vl| vl <= l)
                    {
                        flag(
                            "exit",
                            format!(
                                "exits the optimistic read section (version \
                                 `{v}` loaded at line {bind}) without \
                                 re-validating: the data this path trusts may \
                                 be torn; validate before returning, or waive \
                                 with `// pmlint: seqlock-ok(<reason>)`"
                            ),
                        );
                    }
                    for rc in scan_calls(c) {
                        if ATOMIC_WRITES.contains(&rc.name.as_str()) {
                            flag(
                                "write",
                                format!(
                                    "`.{}()` inside the optimistic read section \
                                     (version `{v}`, line {bind}): a read \
                                     section must not publish shared state — a \
                                     failed validation would leave the side \
                                     effect behind; move it out or waive with \
                                     `// pmlint: seqlock-ok(<reason>)`",
                                    rc.name
                                ),
                            );
                        }
                        let is_lock_name = rc.name == "lock" || rc.name == "try_lock";
                        let classified = match &rc.kind {
                            CallKind::Dotted { receiver } => locks::classify(
                                &file_name,
                                &crate::graph::receiver_field(receiver),
                                &rc.name,
                            )
                            .is_some(),
                            _ => false,
                        };
                        if is_lock_name || classified {
                            flag(
                                "lock",
                                format!(
                                    "acquires a lock (`{}`) inside the \
                                     optimistic read section (version `{v}`, \
                                     line {bind}): the lock-free read path must \
                                     not block; take the lock after validation \
                                     fails, or waive with \
                                     `// pmlint: seqlock-ok(<reason>)`",
                                    rc.name
                                ),
                            );
                        }
                    }
                    if let Some((lhs, _)) = assignment_parts(c) {
                        if lhs.trim().contains("self.") {
                            flag(
                                "assign",
                                format!(
                                    "assigns to `{}` inside the optimistic read \
                                     section (version `{v}`, line {bind}); \
                                     read sections must be side-effect-free, \
                                     or waive with \
                                     `// pmlint: seqlock-ok(<reason>)`",
                                    lhs.trim()
                                ),
                            );
                        }
                    }
                    if let Some(tok) = ALLOC_TOKENS.iter().find(|t| c.contains(**t)) {
                        flag(
                            "alloc",
                            format!(
                                "allocates (`{}`) inside the optimistic read \
                                 section (version `{v}`, line {bind}); hoist \
                                 the buffer out of the retry loop and reuse it, \
                                 or waive with `// pmlint: seqlock-ok(<reason>)`",
                                tok.trim_end_matches('(')
                            ),
                        );
                    }
                    // Calls whose transitive lock set is non-empty block
                    // inside the section even though no `.lock()` is
                    // visible here.
                    for ci in ws
                        .outcalls
                        .get(&FnId { file: fi, idx })
                        .into_iter()
                        .flatten()
                    {
                        let call = &ws.calls[*ci];
                        if call.line != l || call.target == (FnId { file: fi, idx }) {
                            continue;
                        }
                        if let Some(b) = sets.blocking.get(&call.target) {
                            if let Some(&cls) = b.iter().next() {
                                flag(
                                    "callee-lock",
                                    format!(
                                        "calls `{}` inside the optimistic read \
                                         section (version `{v}`, line {bind}), \
                                         and it transitively acquires {}; the \
                                         lock-free read path must not block — \
                                         restructure, or waive with \
                                         `// pmlint: seqlock-ok(<reason>)`",
                                        ws.span(call.target).name,
                                        locks::LOCK_ORDER[cls].name
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// R9 scope: the network front-end and the group committer.
fn in_ack_scope(path: &str) -> bool {
    path.starts_with("crates/server/") || path == "crates/pm/src/group.rs"
}

/// Tokens that discharge the durability obligation on a response frame.
fn covers_durability(code: &str) -> bool {
    code.contains("complete(") || code.contains("flush_batches(") || code.contains("persist")
}

/// R9 driver.
pub(crate) fn rule_durable_ack(ws: &Workspace, out: &mut Findings) {
    const MARK: &str = "pmlint: ack-ok(";
    for f in &ws.files {
        if !in_ack_scope(&f.path) || f.is_test_path() {
            continue;
        }
        for (idx, span) in f.st.fns.iter().enumerate() {
            // (ident, birth line, covered at birth)
            let mut frames: Vec<(String, usize, bool)> = Vec::new();
            for l in span.start..=span.end {
                if f.st.fn_idx_at(l) != Some(idx) || f.is_test_line(l) {
                    continue;
                }
                let code = &f.lines[l - 1].code;
                if let Some((idents, rhs)) = parse_let(code) {
                    let born = rhs.contains("write_frame(")
                        || rhs.contains(".frame")
                        || rhs.contains("complete(");
                    let inherits = frames
                        .iter()
                        .find(|(id, _, _)| contains_word(&rhs, id))
                        .map(|(_, birth, cov)| (*birth, *cov));
                    if born {
                        let covered = covers_durability(&rhs);
                        for id in &idents {
                            frames.push((id.clone(), l, covered));
                        }
                    } else if let Some((birth, cov)) = inherits {
                        for id in &idents {
                            frames.push((id.clone(), birth, cov));
                        }
                    }
                }
                // Ack sinks: `finish(frame)` or a send on a resp channel.
                let mut is_sink = false;
                for rc in scan_calls(code) {
                    if rc.name == "finish" {
                        is_sink = true;
                    }
                    if rc.name == "send" {
                        if let CallKind::Dotted { receiver } = &rc.kind {
                            if crate::graph::receiver_field(receiver).contains("resp") {
                                is_sink = true;
                            }
                        }
                    }
                }
                if is_sink {
                    for (id, birth, covered) in &frames {
                        if !contains_word(code, id) {
                            continue;
                        }
                        let discharged = *covered
                            || (*birth..=l).any(|bl| covers_durability(&f.lines[bl - 1].code));
                        if !discharged {
                            let viol = Violation {
                                file: f.path.clone(),
                                line: l,
                                rule: "durable-ack",
                                msg: format!(
                                    "acks response frame `{id}` (built at line \
                                     {birth}) with no `complete`/`flush_batches`\
                                     /persist covering its deferred-persist \
                                     sequence: the client could observe OK for \
                                     a write a crash then loses; complete the \
                                     ticket first, or waive with \
                                     `// pmlint: ack-ok(<reason>)`"
                                ),
                            };
                            push_finding(out, &f.lines, l, MARK, viol);
                            break;
                        }
                    }
                }
                // Fuse-failure nack: every complete() call must handle Err
                // nearby or propagate its Result.
                if has_call(code, "complete") {
                    let trimmed = code.trim_end();
                    let propagated = trimmed.contains(")?")
                        || (!trimmed.ends_with(';') && !trimmed.ends_with('{'));
                    let window_err = (l..=(l + 3).min(span.end)).any(|wl| {
                        contains_word(&f.lines[wl - 1].code, "Err")
                            || f.lines[wl - 1].code.contains("unwrap")
                            || f.lines[wl - 1].code.contains("expect(")
                    });
                    if !propagated && !window_err {
                        let viol = Violation {
                            file: f.path.clone(),
                            line: l,
                            rule: "durable-ack",
                            msg: "`complete()` result is dropped: a blown \
                                  persist fuse (`GroupCommitError::NotDurable`) \
                                  must nack the client, not vanish; match the \
                                  `Err`, propagate the `Result`, or waive with \
                                  `// pmlint: ack-ok(<reason>)`"
                                .to_string(),
                        };
                        push_finding(out, &f.lines, l, MARK, viol);
                    }
                }
                // A discarded flush_batches ok-count swallows fuse failures.
                if has_call(code, "flush_batches") {
                    let consumed = code.contains("let ")
                        || assignment_parts(code).is_some()
                        || code.contains("==")
                        || contains_word(code, "assert")
                        || code.contains("assert_eq!");
                    if !consumed {
                        let viol = Violation {
                            file: f.path.clone(),
                            line: l,
                            rule: "durable-ack",
                            msg: "`flush_batches()` ok-count discarded: a \
                                  partial flush (blown fuse) must mark \
                                  `failed_from` so later `complete()`s nack; \
                                  consume the count, or waive with \
                                  `// pmlint: ack-ok(<reason>)`"
                                .to_string(),
                        };
                        push_finding(out, &f.lines, l, MARK, viol);
                    }
                }
            }
        }
    }
}

/// Run R7–R9 over the workspace.
pub(crate) fn run(ws: &Workspace, out: &mut Findings) {
    let facts = collect_fn_facts(ws);
    let sets = locks::build_lock_sets(ws);
    rule_epoch_escape(ws, &facts, out);
    rule_seqlock_purity(ws, &sets, out);
    rule_durable_ack(ws, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn let_parsing_handles_patterns() {
        let (ids, rhs) = parse_let("    let (cur, old) = self.tables();").unwrap();
        assert_eq!(ids, vec!["cur", "old"]);
        assert!(rhs.contains("tables"));
        let (ids, _) = parse_let("let Some((_, s)) = g.iter().find(|x| x) else {").unwrap();
        assert_eq!(ids, vec!["s"], "closure params are RHS, not pattern");
        let (ids, _) = parse_let("let next: Box<[Entry]> = g.iter().collect();").unwrap();
        assert_eq!(ids, vec!["next"], "type ascription must not bind");
        let (ids, _) =
            parse_let("if let Err(mpsc::SendError(item)) = commit_tx.send(item) {").unwrap();
        assert_eq!(ids, vec!["item"]);
        assert!(parse_let("x.complete(t);").is_none());
    }

    #[test]
    fn assignments_skip_comparisons() {
        assert!(assignment_parts("if a == b {").is_none());
        assert!(assignment_parts("Ok(()) => item.frame,").is_none());
        assert!(assignment_parts("x <= y;").is_none());
        let (l, r) = assignment_parts("self.slot = p;").unwrap();
        assert_eq!(l.trim(), "self.slot");
        assert_eq!(r.trim(), "p;");
        assert!(assignment_parts("let x = 1;").is_none());
    }

    #[test]
    fn fixture_shapes_cover_fn_facts() {
        let ws = Workspace::build(vec![(
            "crates/hart/src/dir.rs".to_string(),
            "impl Shard {\n    pub fn inner_ptr(&self) -> *const Inner {\n        self.inner.data_ptr()\n    }\n    fn version(&self) -> u64 {\n        self.version.load(Ordering::Acquire)\n    }\n}\nfn protect() -> DirGuard<'_> {\n    match hart_ebr::pin() {\n        Some(g) => DirGuard::Pin(g),\n        None => DirGuard::Lock(l),\n    }\n}\n"
                .to_string(),
        )]);
        let facts = collect_fn_facts(&ws);
        assert!(facts.deriving.contains("inner_ptr"));
        assert!(!facts.deriving.contains("version"));
        assert!(facts.guard_returning.contains("protect"));
    }
}
