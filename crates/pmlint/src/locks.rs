//! R5 `lock-order` and R6 `fence-pairing`.
//!
//! # R5 — static lock-order analysis
//!
//! The workspace's cross-crate lock hierarchy is pinned in [`LOCK_ORDER`]
//! (the same ranks `parking_lot::rank` wires into the runtime
//! lock-witness; `tests/selftest.rs` asserts the two tables agree, and
//! DESIGN.md §8 documents the rationale per rank). The rule:
//!
//! 1. classifies every syntactic lock acquisition by (file, receiver
//!    field, method) — e.g. `self.resize.lock()` in `dir.rs` is
//!    `DIR_RESIZE`;
//! 2. recovers each guard's lexical hold range: from the acquisition to
//!    an explicit `drop(guard)`, the close of the enclosing block (the
//!    brace-depth tracker in `structure.rs`), or the end of the function
//!    — a guard bound by a temporary (no `let`) holds for its line only;
//! 3. emits an edge `A → B` for every classified acquisition *or*
//!    resolved call whose transitive callee lock set contains `B` inside
//!    a range holding `A`;
//! 4. fails any blocking edge that is not strictly rank-increasing. The
//!    one sanctioned same-rank edge is a *chained* class (bucket
//!    old→current hand-over-hand during migration). `try_*` acquisitions
//!    cannot deadlock, so their edges are exempt but still reported.
//!
//! Guards that escape the acquiring function (e.g. `DirGuard::Lock`)
//! under-approximate: the static rule misses orderings the runtime
//! witness still catches. That split of labor is by design.
//!
//! # R6 — fence pairing
//!
//! Every `Release`-side store (`store`/`swap`/`fetch_*` with `Release`
//! or `AcqRel`) on a guarded seqlock/migration atomic must have a
//! matching `Acquire`-side load path in the same module: either a direct
//! `.load(Ordering::Acquire)` of the same field, or the audited
//! `fence(Acquire)` + `load(Relaxed)` idiom. Waiver:
//! `// pmlint: fence-ok(<reason>)`.

use crate::graph::{receiver_field, scan_calls, FnId, Workspace};
use crate::{push_finding, Findings, Violation};
use std::collections::{HashMap, HashSet};

/// One class in the canonical lock hierarchy. Ranks must strictly
/// increase in acquisition order; `chained` permits same-class nesting
/// (hand-over-hand).
#[derive(Debug, Clone, Copy)]
pub struct LockClass {
    pub name: &'static str,
    pub rank: u16,
    pub chained: bool,
    /// Where the lock lives (documentation; classification is by the
    /// acquisition patterns below).
    pub file: &'static str,
    pub rationale: &'static str,
}

/// The canonical hierarchy (DESIGN.md §8). Keep in sync with
/// `parking_lot::rank`; `tests/selftest.rs` cross-checks the ranks.
pub const LOCK_ORDER: &[LockClass] = &[
    LockClass {
        name: "DIR_SCAN_CACHE",
        rank: 5,
        chained: false,
        file: "crates/hart/src/dir.rs",
        rationale: "generation-stamped sorted-shard list for ordered scans; \
                    rebuilt before the lock is taken and never held across \
                    another acquisition, hence the lowest rank",
    },
    LockClass {
        name: "DIR_RESIZE",
        rank: 10,
        chained: false,
        file: "crates/hart/src/dir.rs",
        rationale: "serializes grows/finishes and the pinless read fallback; \
                    taken before any bucket lock (shards_sorted, DirGuard::Lock)",
    },
    LockClass {
        name: "BUCKET_ENTRIES",
        rank: 20,
        chained: true,
        file: "crates/hart/src/dir.rs",
        rationale: "per-bucket entry table; chained: migrate_bucket holds the \
                    old-table bucket while installing into the current-table \
                    bucket (strictly old→current, never back)",
    },
    LockClass {
        name: "SHARD",
        rank: 30,
        chained: false,
        file: "crates/hart/src/dir.rs",
        rationale: "per-ART shard RwLock (seqlock write sections); taken under \
                    a bucket lock by remove_if_empty",
    },
    LockClass {
        name: "EPALLOC_CLASS",
        rank: 40,
        chained: false,
        file: "crates/epalloc/src/epalloc.rs",
        rationale: "per-object-class allocator state; taken under a shard \
                    lock by every insert/update/remove",
    },
    LockClass {
        name: "LOG_SLOTS",
        rank: 50,
        chained: false,
        file: "crates/epalloc/src/logs.rs",
        rationale: "micro-log slot pool free list; taken under a class lock \
                    by recycle_chunk's rlog acquisition",
    },
    LockClass {
        name: "EBR_GARBAGE",
        rank: 60,
        chained: false,
        file: "crates/ebr/src/lib.rs",
        rationale: "global deferred-drop bag; taken under bucket locks by \
                    Bucket::install → defer_drop (destructors run after the \
                    bag unlocks, so nothing nests below it)",
    },
    LockClass {
        name: "GROUP_COMMIT",
        rank: 70,
        chained: false,
        file: "crates/pm/src/group.rs",
        rationale: "group-commit batch state; a flush promotes shadow lines \
                    under it but never takes another ranked lock, so only \
                    the leaf-level connection registry ranks above it",
    },
    LockClass {
        name: "SERVER_CONNS",
        rank: 80,
        chained: false,
        file: "crates/server/src/lib.rs",
        rationale: "server connection registry (Shared.conns); held briefly \
                    to push/drain sockets and nothing ranked is ever \
                    acquired under it, hence the top rank",
    },
];

/// Classification patterns: (class index, file-name filter, receiver
/// field filter, method filter). `None` matches anything.
struct AcqPat {
    class: usize,
    file: Option<&'static str>,
    field: Option<&'static str>,
    methods: &'static [&'static str],
}

const LOCK_METHODS: &[&str] = &["lock", "try_lock"];
const RW_METHODS: &[&str] = &["read", "write", "try_read", "try_write"];

const ACQ_PATTERNS: &[AcqPat] = &[
    AcqPat {
        class: 0, // DIR_SCAN_CACHE
        file: Some("dir.rs"),
        field: Some("scan_cache"),
        methods: RW_METHODS,
    },
    AcqPat {
        class: 1, // DIR_RESIZE
        file: Some("dir.rs"),
        field: Some("resize"),
        methods: LOCK_METHODS,
    },
    AcqPat {
        class: 2, // BUCKET_ENTRIES
        file: Some("dir.rs"),
        field: Some("table"),
        methods: RW_METHODS,
    },
    AcqPat {
        class: 3, // SHARD (the raw RwLock inside Shard)
        file: Some("dir.rs"),
        field: Some("inner"),
        methods: RW_METHODS,
    },
    AcqPat {
        class: 3, // SHARD via its unique wrapper, from any crate
        file: None,
        field: None,
        methods: &["write_observed"],
    },
    AcqPat {
        class: 4, // EPALLOC_CLASS
        file: Some("epalloc.rs"),
        field: Some("classes"),
        methods: LOCK_METHODS,
    },
    AcqPat {
        class: 5, // LOG_SLOTS
        file: Some("logs.rs"),
        field: Some("free"),
        methods: LOCK_METHODS,
    },
    AcqPat {
        class: 6, // EBR_GARBAGE
        file: Some("lib.rs"),
        field: Some("GARBAGE"),
        methods: LOCK_METHODS,
    },
    AcqPat {
        class: 7, // GROUP_COMMIT
        file: Some("group.rs"),
        field: Some("state"),
        methods: LOCK_METHODS,
    },
    AcqPat {
        class: 8, // SERVER_CONNS
        file: Some("lib.rs"),
        field: Some("conns"),
        methods: LOCK_METHODS,
    },
];

/// A classified acquisition site.
#[derive(Debug, Clone)]
pub(crate) struct Acq {
    pub(crate) line: usize,
    pub(crate) col: usize,
    pub(crate) class: usize,
    pub(crate) is_try: bool,
    /// Lexical hold range (line numbers, inclusive), for guard-bound
    /// acquisitions; a temporary holds only its own line.
    pub(crate) hold_to: usize,
}

/// An observed lock-order edge (reported in the JSON summary).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockEdge {
    pub from: &'static str,
    pub to: &'static str,
    pub file: String,
    pub line: usize,
    pub is_try: bool,
}

/// Classify one dotted call as a lock acquisition.
pub(crate) fn classify(file_name: &str, field: &str, method: &str) -> Option<(usize, bool)> {
    classify_pattern(file_name, field, method)
        .map(|pi| (ACQ_PATTERNS[pi].class, method.starts_with("try_")))
}

/// Index of the first `ACQ_PATTERNS` entry matching a dotted call, if any
/// — the per-pattern view `classify` and the liveness audit share.
fn classify_pattern(file_name: &str, field: &str, method: &str) -> Option<usize> {
    for (pi, p) in ACQ_PATTERNS.iter().enumerate() {
        if let Some(f) = p.file {
            if f != file_name {
                continue;
            }
        }
        if let Some(fld) = p.field {
            if fld != field {
                continue;
            }
        }
        if !p.methods.contains(&method) {
            continue;
        }
        return Some(pi);
    }
    None
}

/// Per-`ACQ_PATTERNS` site counts over the workspace. A pattern with zero
/// hits is dead — typically a field rename silently blinded the rule (the
/// PR-9 `entries`→`table` retune) — and fails the liveness gate in `main`
/// and the `pattern_liveness_all_alive` selftest.
pub(crate) fn acq_liveness(ws: &Workspace) -> Vec<crate::Liveness> {
    let mut hits = vec![0usize; ACQ_PATTERNS.len()];
    for f in &ws.files {
        let file_name = f.file_name().to_string();
        for line in &f.lines {
            for rc in scan_calls(&line.code) {
                let field = match &rc.kind {
                    crate::graph::CallKind::Dotted { receiver } => receiver_field(receiver),
                    crate::graph::CallKind::SelfDot => String::new(),
                    _ => continue,
                };
                if let Some(pi) = classify_pattern(&file_name, &field, &rc.name) {
                    hits[pi] += 1;
                }
            }
        }
    }
    ACQ_PATTERNS
        .iter()
        .zip(hits)
        .map(|(p, h)| crate::Liveness {
            table: "ACQ_PATTERNS",
            key: format!(
                "{} file={} field={} methods={:?}",
                LOCK_ORDER[p.class].name,
                p.file.unwrap_or("*"),
                p.field.unwrap_or("*"),
                p.methods
            ),
            hits: h,
        })
        .collect()
}

/// Find the binding identifier of `let [mut] g = …` / `let Some([mut] g) =
/// …` / `if let Some(g) = …` on the code before column `col`.
fn binding_before(code: &str, col: usize) -> Option<String> {
    let head: String = code.chars().take(col).collect();
    let let_pos = head.rfind("let ")?;
    let mut rest = head[let_pos + 4..].trim_start();
    for strip in ["Some(", "Ok("] {
        if let Some(r) = rest.strip_prefix(strip) {
            rest = r.trim_start();
        }
    }
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || ident == "_" {
        None
    } else {
        Some(ident)
    }
}

/// Compute where a guard bound at (`line`, depth) stops being held:
/// an explicit `drop(ident)`, the enclosing block's close, or `fn_end`.
pub(crate) fn hold_end(
    ws: &Workspace,
    file: usize,
    line: usize,
    binding: Option<&str>,
    fn_end: usize,
) -> usize {
    let f = &ws.files[file];
    let mut depth_here = f.st.depth_end[line];
    let mut scan_from = line + 1;
    if f.lines[line - 1].code.trim_end().ends_with("else {") {
        // `let Some(g) = ….lock() else { … };` — the binding lives in the
        // *enclosing* scope; the diverging else block closes first. Skip
        // past it and track the outer depth.
        for l in line + 1..=fn_end {
            if f.st.depth_end[l] < depth_here {
                scan_from = l + 1;
                depth_here = f.st.depth_end[l];
                break;
            }
        }
    }
    let mut end = fn_end;
    for l in scan_from..=fn_end {
        if let Some(b) = binding {
            let pat = format!("drop({b})");
            if f.lines[l - 1].code.contains(&pat) {
                end = l.saturating_sub(1);
                break;
            }
        }
        if f.st.depth_end[l] < depth_here {
            // The enclosing block closed on `l`; code after the close
            // (same line or later) no longer holds the guard. Treat the
            // close line itself as outside to stay under-approximate.
            end = l.saturating_sub(1);
            break;
        }
    }
    end.max(line)
}

/// Per-function transitive lock sets: (blocking classes, try classes).
pub(crate) struct LockSets {
    pub(crate) blocking: HashMap<FnId, HashSet<usize>>,
    #[allow(dead_code)]
    pub(crate) trying: HashMap<FnId, HashSet<usize>>,
}

/// Direct classified acquisitions in one function.
pub(crate) fn direct_acqs(ws: &Workspace, file: usize, fn_idx: usize) -> Vec<Acq> {
    let f = &ws.files[file];
    let span = &f.st.fns[fn_idx];
    let file_name = f.file_name().to_string();
    let mut out = Vec::new();
    for lineno in span.start..=span.end {
        // Only the innermost function owns a line (nested fns are their
        // own scopes).
        if f.st.fn_idx_at(lineno) != Some(fn_idx) {
            continue;
        }
        let code = &f.lines[lineno - 1].code;
        for rc in scan_calls(code) {
            let field = match &rc.kind {
                crate::graph::CallKind::Dotted { receiver } => receiver_field(receiver),
                crate::graph::CallKind::SelfDot => {
                    // `self.f()` — field is nothing; only method-only
                    // patterns (write_observed) can match.
                    String::new()
                }
                _ => continue,
            };
            let Some((class, is_try)) = classify(&file_name, &field, &rc.name) else {
                continue;
            };
            let binding = binding_before(code, rc.col);
            let hold_to = match binding.as_deref() {
                Some(b) => hold_end(ws, file, lineno, Some(b), span.end),
                None => lineno,
            };
            out.push(Acq {
                line: lineno,
                col: rc.col,
                class,
                is_try,
                hold_to,
            });
        }
    }
    out
}

/// Build transitive lock sets for every function (bounded DFS).
pub(crate) fn build_lock_sets(ws: &Workspace) -> LockSets {
    let mut sets = LockSets {
        blocking: HashMap::new(),
        trying: HashMap::new(),
    };
    // Seed with direct acquisitions.
    for (fi, f) in ws.files.iter().enumerate() {
        for idx in 0..f.st.fns.len() {
            let id = FnId { file: fi, idx };
            let mut b = HashSet::new();
            let mut t = HashSet::new();
            for a in direct_acqs(ws, fi, idx) {
                if a.is_try {
                    t.insert(a.class);
                } else {
                    b.insert(a.class);
                }
            }
            sets.blocking.insert(id, b);
            sets.trying.insert(id, t);
        }
    }
    // Propagate through resolved calls to a fixed point (the graph is
    // small; a few rounds converge).
    for _ in 0..6 {
        let mut changed = false;
        for (caller, outs) in &ws.outcalls {
            let mut add_b: HashSet<usize> = HashSet::new();
            let mut add_t: HashSet<usize> = HashSet::new();
            for &ci in outs {
                let target = ws.calls[ci].target;
                if target == *caller {
                    continue;
                }
                if let Some(tb) = sets.blocking.get(&target) {
                    add_b.extend(tb.iter().copied());
                }
                if let Some(tt) = sets.trying.get(&target) {
                    add_t.extend(tt.iter().copied());
                }
            }
            if let Some(b) = sets.blocking.get_mut(caller) {
                let before = b.len();
                b.extend(add_b);
                changed |= b.len() != before;
            }
            if let Some(t) = sets.trying.get_mut(caller) {
                let before = t.len();
                t.extend(add_t);
                changed |= t.len() != before;
            }
        }
        if !changed {
            break;
        }
    }
    sets
}

/// R5 driver: edge extraction + rank check across the workspace.
pub fn rule_lock_order(ws: &Workspace, out: &mut Findings) -> (Vec<LockEdge>, Vec<LockEdge>) {
    let sets = build_lock_sets(ws);
    let mut edges: HashSet<LockEdge> = HashSet::new();
    let mut try_edges: HashSet<LockEdge> = HashSet::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for idx in 0..f.st.fns.len() {
            let acqs = direct_acqs(ws, fi, idx);
            // A held try-guard is still a held lock: once acquired, later
            // acquisitions under it are constrained the same way, so
            // `held` ranges over try and blocking acquisitions alike —
            // only the *nested* acquisition's try-ness exempts an edge.
            for held in &acqs {
                // Nested classified acquisitions inside the hold range.
                for nested in &acqs {
                    let after = nested.line > held.line
                        || (nested.line == held.line && nested.col > held.col);
                    if !after || nested.line > held.hold_to {
                        continue;
                    }
                    record_edge(
                        ws,
                        fi,
                        held,
                        nested.class,
                        nested.is_try,
                        nested.line,
                        &mut edges,
                        &mut try_edges,
                        out,
                    );
                }
                // Calls inside the hold range contribute their callees'
                // transitive sets.
                for ci in ws
                    .outcalls
                    .get(&FnId { file: fi, idx })
                    .into_iter()
                    .flatten()
                {
                    let call = &ws.calls[*ci];
                    let after =
                        call.line > held.line || (call.line == held.line && call.col > held.col);
                    if !after || call.line > held.hold_to {
                        continue;
                    }
                    if let Some(b) = sets.blocking.get(&call.target) {
                        for &cls in b {
                            record_edge(
                                ws,
                                fi,
                                held,
                                cls,
                                false,
                                call.line,
                                &mut edges,
                                &mut try_edges,
                                out,
                            );
                        }
                    }
                    if let Some(t) = sets.trying.get(&call.target) {
                        for &cls in t {
                            record_edge(
                                ws,
                                fi,
                                held,
                                cls,
                                true,
                                call.line,
                                &mut edges,
                                &mut try_edges,
                                out,
                            );
                        }
                    }
                }
            }
        }
    }
    let mut e: Vec<LockEdge> = edges.into_iter().collect();
    let mut t: Vec<LockEdge> = try_edges.into_iter().collect();
    e.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    t.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (e, t)
}

#[allow(clippy::too_many_arguments)]
fn record_edge(
    ws: &Workspace,
    fi: usize,
    held: &Acq,
    to_class: usize,
    is_try: bool,
    line: usize,
    edges: &mut HashSet<LockEdge>,
    try_edges: &mut HashSet<LockEdge>,
    out: &mut Findings,
) {
    let f = &ws.files[fi];
    let from = LOCK_ORDER[held.class];
    let to = LOCK_ORDER[to_class];
    let edge = LockEdge {
        from: from.name,
        to: to.name,
        file: f.path.clone(),
        line,
        is_try,
    };
    if is_try {
        try_edges.insert(edge);
        return;
    }
    edges.insert(edge);
    let legal = from.rank < to.rank || (held.class == to_class && from.chained);
    if !legal {
        let v = Violation {
            file: f.path.clone(),
            line,
            rule: "lock-order",
            msg: format!(
                "acquires {} (rank {}) while holding {} (rank {}, taken at \
                 line {}): violates the canonical LOCK_ORDER hierarchy \
                 (DESIGN.md §8); reorder the acquisitions, use try_*, or \
                 waive with `// pmlint: lock-order-ok(<reason>)`",
                to.name, to.rank, from.name, from.rank, held.line
            ),
        };
        push_finding(out, &f.lines, line, "pmlint: lock-order-ok(", v);
    }
}

/// Guarded-atomic name fragments for R6 (same family R3 polices).
const GUARDED_ATOMS: &[&str] = &["version", "migrat", "seq"];

/// Release-side RMW/store methods R6 inspects.
const RELEASE_SITES: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
];

/// R6 driver: every Release-side publish on a guarded atomic needs an
/// Acquire-side observer of the same field in the same file.
pub fn rule_fence_pairing(ws: &Workspace, out: &mut Findings) {
    for f in &ws.files {
        if f.is_test_path() {
            continue;
        }
        // Pass 1: collect Acquire-side observers per field ident.
        let mut acquire_loads: HashSet<String> = HashSet::new();
        let mut relaxed_loads: HashSet<String> = HashSet::new();
        let mut has_acquire_fence = false;
        for line in &f.lines {
            let code = &line.code;
            if code.contains("fence(Ordering::Acquire)") || code.contains("fence(Acquire)") {
                has_acquire_fence = true;
            }
            let ch: Vec<char> = code.chars().collect();
            for rc in scan_calls(code) {
                if rc.name != "load" && rc.name != "compare_exchange" {
                    continue;
                }
                if let crate::graph::CallKind::Dotted { receiver } = &rc.kind {
                    let field = receiver_field(receiver);
                    let tail: String = ch[rc.col..].iter().collect();
                    let arg_head: String = tail.chars().take(80).collect();
                    if arg_head.contains("Acquire")
                        || arg_head.contains("AcqRel")
                        || arg_head.contains("SeqCst")
                    {
                        acquire_loads.insert(field);
                    } else if arg_head.contains("Relaxed") {
                        relaxed_loads.insert(field);
                    }
                }
            }
        }
        // Pass 2: check Release-side sites.
        for (li, line) in f.lines.iter().enumerate() {
            let lineno = li + 1;
            if f.is_test_line(lineno) {
                continue;
            }
            let code = &line.code;
            if !(code.contains("Ordering::Release") || code.contains("Ordering::AcqRel")) {
                continue;
            }
            for rc in scan_calls(code) {
                if !RELEASE_SITES.contains(&rc.name.as_str()) {
                    continue;
                }
                let crate::graph::CallKind::Dotted { receiver } = &rc.kind else {
                    continue;
                };
                let field = receiver_field(receiver);
                if !GUARDED_ATOMS
                    .iter()
                    .any(|g| field.to_lowercase().contains(g))
                {
                    continue;
                }
                let paired = acquire_loads.contains(&field)
                    || (has_acquire_fence && relaxed_loads.contains(&field))
                    // An AcqRel RMW is its own Acquire side when the same
                    // field is also AcqRel-read-modified elsewhere; the
                    // direct-load check above already covers the common
                    // seqlock validate path.
                    ;
                if !paired {
                    let v = Violation {
                        file: f.path.clone(),
                        line: lineno,
                        rule: "fence-pairing",
                        msg: format!(
                            "Release-side `{}` on guarded atomic `{field}` has no \
                             matching Acquire load of `{field}` in this module; \
                             add the Acquire-side observer (or the audited \
                             fence(Acquire)+Relaxed idiom), or waive with \
                             `// pmlint: fence-ok(<reason>)`",
                            rc.name
                        ),
                    };
                    push_finding(out, &f.lines, lineno, "pmlint: fence-ok(", v);
                }
            }
        }
    }
}

/// The table must itself be well-formed: strictly increasing unique ranks.
pub fn lock_order_table_is_sane() -> bool {
    LOCK_ORDER.windows(2).all(|w| w[0].rank < w[1].rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_strictly_ranked() {
        assert!(lock_order_table_is_sane());
    }

    #[test]
    fn binding_extraction() {
        assert_eq!(
            binding_before("        let mut g = bucket.table.write();", 26).as_deref(),
            Some("g")
        );
        assert_eq!(
            binding_before("let Some(mut st) = self.resize.try_lock() else {", 25).as_deref(),
            Some("st")
        );
        assert_eq!(binding_before("self.resize.lock().x = 1;", 5), None);
    }

    #[test]
    fn annotated_is_reexported_for_waivers() {
        // Smoke-test the waiver plumbing compiles against the lexer.
        let lines = crate::lexer::lex("// pmlint: lock-order-ok(test)\nx();\n");
        assert!(crate::lexer::annotated(&lines, 2, "pmlint: lock-order-ok("));
    }
}
