//! The line lexer: strips comments and string literals so the rules only
//! ever see real code tokens.
//!
//! Comments and string interiors are replaced by spaces in the code view
//! (so column positions survive for site reporting), and the comment text
//! is kept separately (waivers and `SAFETY:` annotations live there).
//! State carries across lines: multi-line block comments (with nesting),
//! multi-line `"…"` strings, and multi-line raw strings `r"…"` /
//! `r#"…"#` (any hash depth) are all tracked. `tests/selftest.rs` pins
//! the raw-string and nested-comment behavior with seeded fixtures.

/// A source line split into its code and comment parts.
pub struct Line {
    pub code: String,
    pub comment: String,
}

/// Carry-over lexer state between lines.
#[derive(Default)]
pub struct SplitState {
    block_comment_depth: u32,
    in_string: bool,
    raw_string_hashes: Option<u32>,
}

/// True when `c` can be part of an identifier (so a preceding `r` is the
/// tail of an identifier like `ptr`, not a raw-string prefix).
fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Strip one line into (code, comment) under `st`. String-literal interiors
/// become spaces in the code view so tokens inside them never match rules.
pub fn split_line(line: &str, st: &mut SplitState) -> Line {
    let ch: Vec<char> = line.chars().collect();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0usize;
    while i < ch.len() {
        if st.block_comment_depth > 0 {
            if ch[i] == '*' && i + 1 < ch.len() && ch[i + 1] == '/' {
                st.block_comment_depth -= 1;
                i += 2;
            } else if ch[i] == '/' && i + 1 < ch.len() && ch[i + 1] == '*' {
                st.block_comment_depth += 1;
                i += 2;
            } else {
                comment.push(ch[i]);
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = st.raw_string_hashes {
            // Inside r"..." / r#"..."#: ends at '"' followed by `hashes` '#'.
            if ch[i] == '"' {
                let mut n = 0u32;
                while n < hashes && i + 1 + (n as usize) < ch.len() && ch[i + 1 + n as usize] == '#'
                {
                    n += 1;
                }
                if n == hashes {
                    st.raw_string_hashes = None;
                    i += 1 + hashes as usize;
                    code.push(' ');
                    continue;
                }
            }
            i += 1;
            code.push(' ');
            continue;
        }
        if st.in_string {
            if ch[i] == '\\' {
                i += 2;
                code.push(' ');
                continue;
            }
            if ch[i] == '"' {
                st.in_string = false;
            }
            code.push(' ');
            i += 1;
            continue;
        }
        match ch[i] {
            '/' if i + 1 < ch.len() && ch[i + 1] == '/' => {
                comment.push_str(&ch[i + 2..].iter().collect::<String>());
                break;
            }
            '/' if i + 1 < ch.len() && ch[i + 1] == '*' => {
                st.block_comment_depth += 1;
                i += 2;
            }
            '"' => {
                st.in_string = true;
                code.push(' ');
                i += 1;
            }
            'r' if i + 1 < ch.len()
                && (ch[i + 1] == '"' || ch[i + 1] == '#')
                && (i == 0
                    || !ident_char(ch[i - 1])
                    || (ch[i - 1] == 'b' && (i == 1 || !ident_char(ch[i - 2])))) =>
            {
                // Possible raw string r"..." / r#"..."#, or the tail of a
                // byte raw string br#"..."# (the `b` was already emitted as
                // code, which is harmless — only the string body matters).
                // The look-behind keeps identifiers ending in `r` (followed
                // by `#`, as in a raw identifier used by a macro) out of
                // string state, while still accepting a lone `b` prefix.
                let mut j = i + 1;
                let mut hashes = 0u32;
                while j < ch.len() && ch[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < ch.len() && ch[j] == '"' {
                    st.raw_string_hashes = Some(hashes);
                    code.push(' ');
                    i = j + 1;
                } else {
                    code.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs. lifetime: a literal closes within a few
                // chars ('x', '\n', '\u{..}'); a lifetime does not.
                let rest: String = ch[i..].iter().take(12).collect();
                if let Some(len) = char_literal_len(&rest) {
                    for _ in 0..len {
                        code.push(' ');
                    }
                    i += len;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    Line { code, comment }
}

/// Length (in chars) of a char literal starting at `s[0] == '\''`, or None
/// for a lifetime.
fn char_literal_len(s: &str) -> Option<usize> {
    let ch: Vec<char> = s.chars().collect();
    if ch.len() < 3 {
        return None;
    }
    if ch[1] == '\\' {
        // Escaped: find the closing quote. Start past the escaped char so
        // `'\''` (escaped single quote) does not close on its own escape.
        for (j, c) in ch.iter().enumerate().skip(3) {
            if *c == '\'' {
                return Some(j + 1);
            }
        }
        None
    } else if ch[2] == '\'' {
        Some(3)
    } else {
        None
    }
}

/// Lex a whole source into per-line (code, comment) views.
pub fn lex(src: &str) -> Vec<Line> {
    let mut st = SplitState::default();
    src.lines().map(|l| split_line(l, &mut st)).collect()
}

/// True when `hay` contains `needle` as a word (identifier-boundary match).
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let hb = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = hb[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = at + needle.len();
        let after_ok = after >= hb.len() || {
            let b = hb[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Does any comment on `line` or the contiguous comment block above carry
/// `marker`? Used for SAFETY comments and pmlint waivers.
pub fn annotated(lines: &[Line], line: usize, marker: &str) -> bool {
    let idx = line - 1;
    if lines[idx].comment.contains(marker) {
        return true;
    }
    // Walk up through comment-only (or attribute-only) lines.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code_trim = l.code.trim();
        let is_pure_comment = code_trim.is_empty() || code_trim.starts_with("#[");
        if !l.comment.is_empty() && l.comment.contains(marker) {
            return true;
        }
        if !is_pure_comment {
            return false;
        }
        if l.comment.is_empty() && code_trim.is_empty() {
            // Blank line ends the annotation block.
            return false;
        }
    }
    false
}

/// Find `.name(`-style method calls of `name` in `code`, returning the
/// index just past the opening parenthesis for each.
pub fn method_calls(code: &str, name: &str) -> Vec<usize> {
    let pat = format!(".{name}(");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat) {
        out.push(from + pos + pat.len());
        from += pos + pat.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn splitter_strips_comments_and_strings() {
        let mut st = SplitState::default();
        let l = split_line(r#"let x = "a.write(b)"; // pool.write(c)"#, &mut st);
        assert!(!l.code.contains("write"));
        assert!(l.comment.contains("pool.write(c)"));
    }

    #[test]
    fn splitter_handles_block_comments_across_lines() {
        let mut st = SplitState::default();
        let a = split_line("foo(); /* begin", &mut st);
        let b = split_line("unsafe { } */ bar();", &mut st);
        assert!(a.code.contains("foo"));
        assert!(!b.code.contains("unsafe"));
        assert!(b.code.contains("bar"));
    }

    #[test]
    fn splitter_handles_char_literals_and_lifetimes() {
        let mut st = SplitState::default();
        let l = split_line("fn f<'a>(x: &'a u8) -> char { '}' }", &mut st);
        assert!(!l.code.contains('}') || l.code.matches('}').count() == 1);
        let l2 = split_line("let q = 'x'; pool.write(p, &v);", &mut st);
        assert!(l2.code.contains(".write("));
    }

    #[test]
    fn nested_block_comments_track_depth() {
        // Depth-2 nesting on one line: the tail after a single close is
        // still comment; only the second close re-enters code.
        let c = codes("/* a /* b */ pool.write(p, &v); */ after();");
        assert!(!c[0].contains("write"), "depth-1 tail leaked: {:?}", c[0]);
        assert!(c[0].contains("after"), "post-close code lost: {:?}", c[0]);
        // And across lines.
        let c = codes("/* outer\n/* inner */ pool.write(p, &v);\n*/ done();");
        assert!(!c[1].contains("write"));
        assert!(c[2].contains("done"));
    }

    #[test]
    fn raw_strings_are_stripped_at_any_hash_depth() {
        let c = codes("let p = r\"pool.write(a, b)\"; x();");
        assert!(!c[0].contains("write"), "r\"..\" leaked: {:?}", c[0]);
        assert!(c[0].contains("x()"));
        let c = codes("let p = r#\"has \" quote; persist(q)\"#; y();");
        assert!(!c[0].contains("persist"), "r#\"..\"# leaked: {:?}", c[0]);
        assert!(c[0].contains("y()"));
        // Multi-line, hash-guarded close: `"#` inside an r##"..."## body
        // is not a terminator.
        let c = codes("let p = r##\"line \"# one\npool.write(p, &v)\"##; z();");
        assert!(
            !c[1].contains("write"),
            "early close inside r##: {:?}",
            c[1]
        );
        assert!(c[1].contains("z()"));
    }

    #[test]
    fn byte_raw_strings_are_stripped() {
        // `br#"..."#`: the `b` prefix must not defeat the raw-string
        // opener — an embedded `"` would otherwise flip plain-string
        // state and leak the tail into the code view.
        let c = codes("let p = br#\"quote \" then persist(q) done\"#; w();");
        assert!(!c[0].contains("persist"), "br# body leaked: {:?}", c[0]);
        assert!(c[0].contains("w()"), "post-literal code lost: {:?}", c[0]);
        // …and the poisoned in_string state must not swallow later lines.
        let c = codes("let p = br#\"has \" quote\"#;\npool.write(p, &v); pool.persist(p, 8);");
        assert!(
            c[1].contains(".write("),
            "state leaked past br#: {:?}",
            c[1]
        );
        // `abr#` is an identifier followed by `#`, not a byte raw string.
        let c = codes("m(abr#frag); pool.write(p, &v);");
        assert!(c[0].contains(".write("), "ident 'abr' ate code: {:?}", c[0]);
        // Plain byte strings already worked; pin that too.
        let c = codes("let p = b\"persist(q)\"; v();");
        assert!(!c[0].contains("persist"));
    }

    #[test]
    fn escaped_quote_char_literal_closes_correctly() {
        // `'\''` must consume all four chars; closing on the escaped
        // quote would leave a stray `'` that lexes as a lifetime.
        assert_eq!(char_literal_len("'\\''x"), Some(4));
        assert_eq!(char_literal_len("'\\n' rest"), Some(4));
        let mut st = SplitState::default();
        let l = split_line("if c == '\\'' { pool.write(p, &v); }", &mut st);
        assert!(
            l.code.contains(".write("),
            "escaped quote broke lexing: {:?}",
            l.code
        );
    }

    #[test]
    fn raw_prefix_needs_an_identifier_boundary() {
        // `hdr#` is an identifier followed by `#` (e.g. from a macro
        // fragment), not a raw-string opener: string state must not start.
        let c = codes("let a = hdr; m(hdr#than); pool.write(p, &v);");
        assert!(
            c[0].contains(".write("),
            "ident-r swallowed code: {:?}",
            c[0]
        );
    }

    #[test]
    fn fn_spans_nest() {
        let src = "fn outer() {\n    fn inner() {\n        x();\n    }\n    y();\n}\n";
        let lines = lex(src);
        let s = crate::structure::analyze_structure(&lines);
        assert_eq!(s.fn_at(3).unwrap().name, "inner");
        assert_eq!(s.fn_at(5).unwrap().name, "outer");
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("let leaf = x;", "leaf"));
        assert!(!contains_word("let leafy = x;", "leaf"));
        assert!(!contains_word("let aleaf = x;", "leaf"));
    }
}
