//! Function-extent and impl-block recovery by brace tracking over the
//! lexed code view.
//!
//! Beyond the v1 tracker (function spans + `#[cfg(test)]` extents), this
//! records:
//!
//! * the enclosing `impl` type of each function (its *qualifier*), which
//!   lets the call graph resolve `self.f(…)` and `Type::f(…)` calls even
//!   when `f` is a common name like `write`;
//! * the brace depth at the **end** of every line, which lets the
//!   lock-order rule end a guard's lexical hold range where its enclosing
//!   block closes (e.g. the block-scoped `resize` guard in
//!   `Directory::memory_bytes`).

use crate::lexer::{contains_word, Line};

/// A function's extent in lines (1-based, inclusive).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Enclosing `impl` type (`Shard` for `Shard::write`), or `None` for a
    /// free function.
    pub qualifier: Option<String>,
    pub start: usize,
    pub end: usize,
}

/// Recovered file structure.
pub struct Structure {
    pub fns: Vec<FnSpan>,
    /// Line-indexed (1-based): true when inside a `#[cfg(test)]` item.
    pub in_test_mod: Vec<bool>,
    /// Line-indexed (1-based): brace depth after the line's last token.
    pub depth_end: Vec<usize>,
}

/// While capturing an `impl` header: the last type name seen (updated
/// across `for`, so `impl Deref for MutexGuard` captures `MutexGuard`).
#[derive(Default)]
struct ImplCapture {
    active: bool,
    name: Option<String>,
}

pub fn analyze_structure(lines: &[Line]) -> Structure {
    let mut fns: Vec<FnSpan> = Vec::new();
    // name, qualifier, open depth, start line
    let mut stack: Vec<(String, Option<String>, usize, usize)> = Vec::new();
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new(); // name, open depth
    let mut test_mod_stack: Vec<usize> = Vec::new(); // open depths
    let mut in_test_mod = vec![false; lines.len() + 1];
    let mut depth_end = vec![0usize; lines.len() + 1];
    let mut brace_depth = 0usize;
    let mut paren_depth = 0i32;
    let mut angle_skip = 0i32; // inside `impl<...>` / `Type<...>` generics
    let mut pending_fn: Option<(String, usize)> = None; // name, start line
    let mut awaiting_name = false;
    let mut pending_test_mod = false;
    let mut imp = ImplCapture::default();

    for (li, line) in lines.iter().enumerate() {
        let lineno = li + 1;
        in_test_mod[lineno] = !test_mod_stack.is_empty();
        let code = &line.code;
        // `#[cfg(test)]` and compound forms like `#[cfg(all(test, ...))]`.
        if code.contains("#[cfg(") && contains_word(code, "test") {
            pending_test_mod = true;
        }
        let ch: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < ch.len() {
            let c = ch[i];
            if angle_skip > 0 {
                // Inside the generics of an impl header: `<...>` nests.
                match c {
                    '<' => angle_skip += 1,
                    '>' => angle_skip -= 1,
                    _ => {}
                }
                i += 1;
                continue;
            }
            if c == '\'' && i + 1 < ch.len() && (ch[i + 1].is_alphabetic() || ch[i + 1] == '_') {
                // Lifetime: skip the tick and its identifier so `'a` never
                // reads as a type-name candidate.
                i += 1;
                while i < ch.len() && (ch[i].is_alphanumeric() || ch[i] == '_') {
                    i += 1;
                }
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < ch.len() && (ch[i].is_alphanumeric() || ch[i] == '_') {
                    i += 1;
                }
                let ident: String = ch[start..i].iter().collect();
                if awaiting_name {
                    pending_fn = Some((ident.clone(), lineno));
                    awaiting_name = false;
                } else if ident == "fn" {
                    awaiting_name = true;
                } else if ident == "impl" {
                    imp = ImplCapture {
                        active: true,
                        name: None,
                    };
                    // Skip `impl<...>` generic parameters immediately.
                    if i < ch.len() && ch[i] == '<' {
                        angle_skip = 1;
                        i += 1;
                    }
                } else if imp.active {
                    match ident.as_str() {
                        // `for` in `impl Trait for Type`: later names win.
                        "for" => {}
                        // A where-clause ends the type-name window.
                        "where" => imp.active = false,
                        _ => {
                            imp.name = Some(ident.clone());
                            // Skip the captured type's own generics.
                            if i < ch.len() && ch[i] == '<' {
                                angle_skip = 1;
                                i += 1;
                            }
                        }
                    }
                }
                continue;
            }
            match c {
                '(' => {
                    // `fn(...)` pointer type, not a definition.
                    awaiting_name = false;
                    paren_depth += 1;
                }
                ')' => paren_depth -= 1,
                '{' if paren_depth == 0 => {
                    brace_depth += 1;
                    if pending_test_mod {
                        // A `#[cfg(test)]` item (module or function) opens
                        // here: everything inside is test code.
                        test_mod_stack.push(brace_depth);
                        pending_test_mod = false;
                        in_test_mod[lineno] = true;
                    }
                    if imp.active {
                        impl_stack.push((imp.name.take(), brace_depth));
                        imp.active = false;
                    }
                    if let Some((name, start)) = pending_fn.take() {
                        let qual = impl_stack.last().and_then(|(n, _)| n.clone());
                        stack.push((name, qual, brace_depth, start));
                    }
                }
                '}' if paren_depth == 0 => {
                    if let Some((_, _, d, _)) = stack.last() {
                        if *d == brace_depth {
                            let (name, qualifier, _, start) = stack.pop().unwrap();
                            fns.push(FnSpan {
                                name,
                                qualifier,
                                start,
                                end: lineno,
                            });
                        }
                    }
                    if impl_stack.last().map(|(_, d)| *d) == Some(brace_depth) {
                        impl_stack.pop();
                    }
                    if test_mod_stack.last() == Some(&brace_depth) {
                        test_mod_stack.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                ';' if paren_depth == 0 => {
                    // Trait method declaration without a body.
                    pending_fn = None;
                }
                _ => {}
            }
            i += 1;
        }
        depth_end[lineno] = brace_depth;
    }
    // Unterminated functions (EOF): close at the last line.
    while let Some((name, qualifier, _, start)) = stack.pop() {
        fns.push(FnSpan {
            name,
            qualifier,
            start,
            end: lines.len(),
        });
    }
    Structure {
        fns,
        in_test_mod,
        depth_end,
    }
}

impl Structure {
    /// Innermost function containing `line` (1-based).
    pub fn fn_at(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// Index of the innermost function containing `line`.
    pub fn fn_idx_at(&self, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start <= line && line <= f.end)
            .min_by_key(|(_, f)| f.end - f.start)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn qualifiers_follow_impl_blocks() {
        let src = "\
impl<'a> Shard<'a> {
    fn write(&self) -> u64 { 1 }
}
impl fmt::Debug for Bucket<T> {
    fn fmt(&self) { x(); }
}
fn free_standing() { y(); }
";
        let s = analyze_structure(&lex(src));
        let find = |n: &str| s.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(find("write").qualifier.as_deref(), Some("Shard"));
        assert_eq!(find("fmt").qualifier.as_deref(), Some("Bucket"));
        assert_eq!(find("free_standing").qualifier, None);
    }

    #[test]
    fn depth_end_tracks_block_scopes() {
        let src = "fn f() {\n    {\n        let g = m.lock();\n    }\n    after();\n}\n";
        let s = analyze_structure(&lex(src));
        assert_eq!(s.depth_end[1], 1);
        assert_eq!(s.depth_end[2], 2);
        assert_eq!(s.depth_end[3], 2);
        assert_eq!(s.depth_end[4], 1, "inner block closed");
        assert_eq!(s.depth_end[6], 0);
    }
}
