//! `cargo run -p pmlint` — lint the workspace for persistence-ordering and
//! concurrency discipline (rules R1–R11; see DESIGN.md §Verification and
//! CONTRIBUTING.md for the rules and the waiver syntax).
//!
//! ```text
//! pmlint [ROOT] [--json PATH] [--max-waivers N] [--baseline PATH]
//! ```
//!
//! Exit codes:
//!
//! * `0` — clean: no hard violations, waiver count within budget.
//! * `1` — hard violations (unwaived rule findings), or a dead
//!   declaration-table entry (an `ACQ_PATTERNS`/`GUARDED_BY`/
//!   `ATOMIC_PROTOCOLS`/`GUARD_PARAMS` entry matching zero workspace
//!   sites — a rename silently blinded a rule; retune the table).
//! * `2` — waiver-only failure: zero hard violations, but the number of
//!   waived findings exceeds `--max-waivers` (the CI no-new-waivers
//!   budget).
//! * `3` — baseline drift: a violation or waived finding whose
//!   `(file, rule)` class is absent from the committed `--baseline` JSON
//!   artifact (`ci/pmlint-baseline.json`). Catches a new waiver sneaking
//!   into a file that never needed one, even when the total stays within
//!   budget; regenerate the baseline deliberately with `--json`.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

/// Workspace root: pmlint lives at `<root>/crates/pmlint`, so walk up from
/// the manifest dir; fall back to the current directory (running the
/// installed binary from the checkout).
fn workspace_root() -> PathBuf {
    if let Ok(m) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(m);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    let mut cur = std::env::current_dir().expect("cwd");
    loop {
        if cur.join("Cargo.toml").exists() && cur.join("crates").is_dir() {
            return cur;
        }
        if !cur.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

/// Minimal JSON string escaping (the only non-trivial values are rule
/// messages and file paths).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn violations_json(vs: &[pmlint::Violation]) -> String {
    let items: Vec<String> = vs
        .iter()
        .map(|v| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"msg\":\"{}\"}}",
                esc(&v.file),
                v.line,
                esc(v.rule),
                esc(&v.msg)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn edges_json(es: &[pmlint::locks::LockEdge]) -> String {
    let items: Vec<String> = es
        .iter()
        .map(|e| {
            format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"line\":{},\"try\":{}}}",
                esc(e.from),
                esc(e.to),
                esc(&e.file),
                e.line,
                e.is_try
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Per-rule counts over a finding list, as a JSON object.
fn rule_counts_json(vs: &[pmlint::Violation]) -> String {
    let mut rules: Vec<&'static str> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for v in vs {
        match rules.iter().position(|r| *r == v.rule) {
            Some(i) => counts[i] += 1,
            None => {
                rules.push(v.rule);
                counts.push(1);
            }
        }
    }
    let items: Vec<String> = rules
        .iter()
        .zip(&counts)
        .map(|(r, c)| format!("\"{}\":{}", esc(r), c))
        .collect();
    format!("{{{}}}", items.join(","))
}

fn liveness_json(ls: &[pmlint::Liveness]) -> String {
    let items: Vec<String> = ls
        .iter()
        .map(|l| {
            format!(
                "{{\"table\":\"{}\",\"key\":\"{}\",\"hits\":{}}}",
                esc(l.table),
                esc(&l.key),
                l.hits
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn report_json(r: &pmlint::Report) -> String {
    format!(
        "{{\"files\":{},\"violations\":{},\"waived\":{},\
         \"violation_counts\":{},\"waiver_counts\":{},\
         \"lock_edges\":{},\"try_edges\":{},\"liveness\":{}}}\n",
        r.files,
        violations_json(&r.violations),
        violations_json(&r.waived),
        rule_counts_json(&r.violations),
        rule_counts_json(&r.waived),
        edges_json(&r.lock_edges),
        edges_json(&r.try_edges),
        liveness_json(&r.liveness)
    )
}

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    max_waivers: Option<usize>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: None,
        json: None,
        max_waivers: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let p = it
                    .next()
                    .ok_or("--json needs a path (use `-` for stdout)")?;
                out.json = Some(PathBuf::from(p));
            }
            "--max-waivers" => {
                let n = it.next().ok_or("--max-waivers needs a count")?;
                out.max_waivers = Some(n.parse().map_err(|_| format!("bad --max-waivers: {n}"))?);
            }
            "--baseline" => {
                let p = it.next().ok_or("--baseline needs a path")?;
                out.baseline = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pmlint [ROOT] [--json PATH|-] [--max-waivers N] [--baseline PATH]"
                        .into(),
                )
            }
            p if out.root.is_none() && !p.starts_with('-') => out.root = Some(PathBuf::from(p)),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(out)
}

/// Extract the `(file, rule)` classes recorded in a pmlint `--json`
/// artifact. Hand-rolled to match [`report_json`]'s fixed key order
/// (`file`, `line`, `rule`, `msg`); lock-edge objects carry a `file` but
/// no `rule` before their close brace, so they drop out naturally.
fn baseline_classes(text: &str) -> HashSet<(String, String)> {
    let mut out = HashSet::new();
    let mut from = 0usize;
    while let Some(p) = text[from..].find("\"file\":\"") {
        let start = from + p + "\"file\":\"".len();
        let Some(endq) = text[start..].find('"') else {
            break;
        };
        let file = &text[start..start + endq];
        let rest_at = start + endq;
        let obj_end = text[rest_at..]
            .find('}')
            .map(|x| rest_at + x)
            .unwrap_or(text.len());
        let seg = &text[rest_at..obj_end];
        if let Some(rp) = seg.find("\"rule\":\"") {
            let rs = rp + "\"rule\":\"".len();
            if let Some(rq) = seg[rs..].find('"') {
                out.insert((file.to_string(), seg[rs..rs + rq].to_string()));
            }
        }
        from = rest_at;
    }
    out
}

/// Findings whose `(file, rule)` class is not in the baseline.
fn off_baseline<'a>(
    findings: &'a [pmlint::Violation],
    base: &HashSet<(String, String)>,
) -> Vec<&'a pmlint::Violation> {
    findings
        .iter()
        .filter(|v| !base.contains(&(v.file.clone(), v.rule.to_string())))
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pmlint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = args.root.unwrap_or_else(workspace_root);
    let report = pmlint::analyze_workspace(&root);
    if let Some(p) = &args.json {
        let body = report_json(&report);
        if p.as_os_str() == "-" {
            print!("{body}");
        } else if let Err(e) = std::fs::write(p, &body) {
            eprintln!("pmlint: cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
    }
    let dead: Vec<&pmlint::Liveness> = report.liveness.iter().filter(|l| l.hits == 0).collect();
    if !dead.is_empty() {
        for l in &dead {
            eprintln!(
                "pattern-liveness: {} entry `{}` matched 0 sites",
                l.table, l.key
            );
        }
        eprintln!(
            "pmlint: {} dead declaration-table entr{} — a rename blinded a rule; \
             retune the table (see CONTRIBUTING.md)",
            dead.len(),
            if dead.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::from(1);
    }
    for v in &report.violations {
        eprintln!("{v}");
    }
    if !report.violations.is_empty() {
        eprintln!(
            "pmlint: {} violation(s) ({} waived) in {} files",
            report.violations.len(),
            report.waived.len(),
            report.files
        );
        return ExitCode::from(1);
    }
    if let Some(budget) = args.max_waivers {
        if report.waived.len() > budget {
            for w in &report.waived {
                eprintln!("waived: {w}");
            }
            eprintln!(
                "pmlint: 0 violations but {} waiver(s) exceed the budget of {budget}; \
                 burn a waiver down before adding a new one",
                report.waived.len()
            );
            return ExitCode::from(2);
        }
    }
    if let Some(bp) = &args.baseline {
        let text = match std::fs::read_to_string(bp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pmlint: cannot read baseline {}: {e}", bp.display());
                return ExitCode::FAILURE;
            }
        };
        let base = baseline_classes(&text);
        let mut drift = off_baseline(&report.violations, &base);
        drift.extend(off_baseline(&report.waived, &base));
        if !drift.is_empty() {
            for d in &drift {
                eprintln!("off-baseline: {d}");
            }
            eprintln!(
                "pmlint: {} finding class(es) absent from {}; fix them or \
                 regenerate the baseline deliberately with --json",
                drift.len(),
                bp.display()
            );
            return ExitCode::from(3);
        }
    }
    println!(
        "pmlint: {} files clean ({} waived finding(s), {} lock edge(s), {} try edge(s))",
        report.files,
        report.waived.len(),
        report.lock_edges.len(),
        report.try_edges.len()
    );
    ExitCode::SUCCESS
}
