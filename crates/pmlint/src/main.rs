//! `cargo run -p pmlint` — lint the workspace for persistence-ordering and
//! concurrency discipline. Exits non-zero when any rule fires; see
//! DESIGN.md §Verification for the rules and the waiver syntax.

use std::path::PathBuf;
use std::process::ExitCode;

/// Workspace root: pmlint lives at `<root>/crates/pmlint`, so walk up from
/// the manifest dir; fall back to the current directory (running the
/// installed binary from the checkout).
fn workspace_root() -> PathBuf {
    if let Ok(m) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(m);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    let mut cur = std::env::current_dir().expect("cwd");
    loop {
        if cur.join("Cargo.toml").exists() && cur.join("crates").is_dir() {
            return cur;
        }
        if !cur.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => workspace_root(),
    };
    let (files, violations) = pmlint::lint_workspace(&root);
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        println!("pmlint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("pmlint: {} violation(s) in {files} files", violations.len());
        ExitCode::FAILURE
    }
}
