//! Seeded R2 violations: `unsafe` without `// SAFETY:` comments.
//! Not compiled — consumed by `tests/selftest.rs` as lint input.

struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {} // VIOLATION: undocumented unsafe impl

// SAFETY: the pointer is only dereferenced on the owning thread.
unsafe impl Sync for Wrapper {} // ok: comment above

fn read_it(w: &Wrapper) -> u8 {
    unsafe { *w.0 } // VIOLATION: undocumented unsafe block
}

fn read_it_documented(w: &Wrapper) -> u8 {
    // SAFETY: `w.0` is non-null and exclusively owned by this call.
    unsafe { *w.0 }
}

/// # Safety
/// Caller must guarantee `p` is valid.
unsafe fn declared_unsafe(p: *mut u8) -> u8 {
    // The fn itself is exempt (documented by `# Safety`), but blocks
    // inside still need comments when they stand alone.
    *p
}
