//! Seeded lexer-blind-spot fixture: the only `persist` token after the PM
//! write lives inside a *nested* block comment, which a depth-unaware
//! lexer would re-enter as code after the first `*/`. The fixed lexer
//! must still report exactly one R1 violation here.
//! Not compiled — consumed by `tests/selftest.rs` as lint input.

fn write_then_comment_only(pool: &PmemPool, p: PmPtr) {
    pool.write_zeros(p, 16); // VIOLATION: nothing below persists
    /* outer comment
       /* inner: pool.persist(p, 16); stays commented */
       still inside the outer comment: persist(p, 16);
    */
    let _ = pool.read::<u64>(p);
}

fn covered_control(pool: &PmemPool, p: PmPtr) {
    pool.write_zeros(p, 8);
    pool.persist(p, 8);
}
