//! Seeded R7 violations: pointers derived under an EBR guard escaping the
//! guard's hold range. Not compiled — consumed by `tests/selftest.rs` as
//! lint input.

struct Reader {
    cache: *const Node,
}

impl Reader {
    fn escapes_by_return(&self, base: *const Node) -> *const Node {
        let g = hart_ebr::pin().unwrap();
        let p = &*base;
        let q = p as *const Node;
        return q; // VIOLATION: q outlives the pin
    }

    fn escapes_by_field_store(&mut self, base: *const Node) {
        let g = hart_ebr::pin().unwrap();
        let p = base as *const Node;
        self.cache = p; // VIOLATION: cached pointer dangles next epoch
        drop(g);
    }

    fn escapes_by_publish(&self, base: *const Node) {
        let g = hart_ebr::pin().unwrap();
        let p = base as *const Node;
        SLOT.store(p, Ordering::Release); // VIOLATION: crosses threads
        drop(g);
    }

    fn used_after_unpin(&self, base: *const Node) -> u64 {
        let g = hart_ebr::pin().unwrap();
        let p = base as *const Node;
        drop(g);
        read_len(p) // VIOLATION: guard already dropped
    }

    fn waived_static_arena(&mut self, base: *const Node) {
        let g = hart_ebr::pin().unwrap();
        let p = base as *const Node;
        // pmlint: epoch-escape-ok(arena is never retired in this configuration)
        self.cache = p;
        drop(g);
    }

    fn copies_out_cleanly(&self, base: *const Node) -> u64 {
        let g = hart_ebr::pin().unwrap();
        let p = base as *const Node;
        let len = read_len(p); // ok: the copy is a value, not the pointer
        drop(g);
        len
    }
}
