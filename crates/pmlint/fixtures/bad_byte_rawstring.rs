//! Regression fixture for the byte-raw-string lexer blind spot: before
//! `br#"…"#` support the `b` prefix defeated the raw-string opener, so the
//! embedded quote flipped plain-string state — the literal's `persist(…)`
//! text leaked into the code view as fake R1 coverage, and the dangling
//! string state swallowed every following function. Not compiled.

fn frame_header(pool: &PmemPool, p: PmPtr) {
    pool.write(p, &MAGIC); // VIOLATION: the only "persist" here is literal text
    let tag = br#"tag " persist(fake coverage) trailing"#;
    keep(tag);
}

fn swallowed_by_poisoned_state(pool: &PmemPool, p: PmPtr) {
    pool.write(p, &1u64); // VIOLATION: a b-r-prefix-blind lexer never sees this
}
