//! Seeded R11 `atomic-protocol` violations. The selftest lints this file
//! under a `crates/server/src/` label (R11 declarations are scoped by
//! crate); under its real fixture path it must stay quiet — the pmlint
//! crate is outside R11 scope (scope-negative).
//!
//! Expected findings (under the server label):
//! * `ready` — an atomic field declaration with no protocol class in the
//!   ATOMIC_PROTOCOLS table.
//! * `shutdown_racy` — a `Relaxed` store on `stop`, whose declared class
//!   (sticky-flag) demands at least Release.
//!
//! Quiet by design: the SeqCst store, the waived Relaxed store, the
//! Acquire observation, and the relaxed-by-declaration counter bump.

use std::sync::atomic::{AtomicBool, Ordering};

struct Lagging {
    ready: AtomicBool,
}

impl Worker {
    fn shutdown_racy(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    fn shutdown_waived(&self) {
        // pmlint: atomic-ok(fixture: join() below provides the happens-before edge this store needs)
        self.stop.store(true, Ordering::Relaxed);
    }

    fn observe(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn admit(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }
}
