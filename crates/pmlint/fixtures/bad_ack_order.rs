//! Seeded R9 violations: response frames acked ahead of their durability
//! point, dropped fuse failures, and a discarded flush count. Not
//! compiled — `tests/selftest.rs` lints this under a `crates/server/src/`
//! label because R9 is scoped to the server + group-commit sources.

fn acks_before_flush(shared: &Shared, resp: &Sender, req_id: u64) {
    let frame = write_frame(req_id, Ok(true));
    shared.finish(resp, frame); // VIOLATION: acked before any persist
}

fn drops_complete_result(gc: &GroupCommitter, t: Ticket) {
    let _ = gc.complete(t); // VIOLATION: a blown fuse vanishes silently
}

fn discards_flush_count(pool: &PmemPool, batches: &[PersistBatch]) {
    pool.flush_batches(batches); // VIOLATION: partial-flush count dropped
}

fn acks_after_complete(shared: &Shared, gc: &GroupCommitter, item: CommitItem) {
    let frame = match gc.complete(item.ticket) {
        Ok(()) => item.frame,
        Err(e) => encode_response(item.req_id, ST_ERR, e.to_string().as_bytes()),
    };
    shared.finish(&item.resp, frame); // ok: complete dominates the ack
}

fn waived_per_op_path(shared: &Shared, resp: &Sender, req_id: u64) {
    let frame = write_frame(req_id, Ok(true));
    // pmlint: ack-ok(per-op path pays its fences before the frame is built)
    shared.finish(resp, frame);
}
