//! Seeded R4 violations: PmPtr values cached across a persist-fuse crash
//! point. Not compiled — consumed by `tests/selftest.rs` as lint input.

#[test]
fn caches_pvalue_across_crash(pool: &PmemPool, h: &Hart, leaf: PmPtr) {
    pool.arm_persist_fuse(3);
    let stale = leaf_read_pvalue(pool, leaf); // VIOLATION: used after crash
    h.insert(&key(1), &val(9)).unwrap();
    pool.simulate_crash();
    assert!(!stale.is_null()); // ...the crash may have reverted p_value
}

#[test]
fn rereads_after_crash(pool: &PmemPool, h: &Hart, leaf: PmPtr) {
    pool.arm_persist_fuse(3);
    let before = leaf_read_pvalue(pool, leaf);
    assert!(!before.is_null()); // ok: consumed before the crash point
    h.insert(&key(1), &val(9)).unwrap();
    pool.simulate_crash();
    let after = leaf_read_pvalue(pool, leaf); // ok: re-read post-crash
    assert!(!after.is_null());
}

#[test]
fn waived_comparison(pool: &PmemPool, h: &Hart, leaf: PmPtr) {
    pool.arm_persist_fuse(3);
    // pmlint: ptr-cache-ok(compared for equality only, never dereferenced)
    let pre = leaf_read_pvalue(pool, leaf);
    h.insert(&key(1), &val(9)).unwrap();
    pool.simulate_crash();
    assert_eq!(pre, leaf_read_pvalue(pool, leaf));
}
