//! Seeded R8 violations: impure or unvalidated seqlock optimistic read
//! sections. Not compiled — consumed by `tests/selftest.rs` as lint input.

impl Table {
    fn never_validates(&self) -> u64 {
        let v0 = self.version.load(Ordering::Acquire); // VIOLATION: no revalidation
        let x = self.cell.load(Ordering::Acquire);
        consume(x, v0)
    }

    fn allocates_in_section(&self) -> Vec<u64> {
        let v0 = self.version.load(Ordering::Acquire);
        let mut buf = Vec::new(); // VIOLATION: allocation inside the section
        buf.push(self.cell.load(Ordering::Acquire));
        if self.version.load(Ordering::Acquire) == v0 {
            return buf;
        }
        Vec::new()
    }

    fn writes_in_section(&self) -> u64 {
        let v0 = self.version.load(Ordering::Acquire);
        self.stats.store(1, Ordering::Release); // VIOLATION: publishes state
        let x = self.cell.load(Ordering::Acquire);
        if self.version.load(Ordering::Acquire) == v0 {
            return x;
        }
        0
    }

    fn locks_in_section(&self) -> u64 {
        let v0 = self.version.load(Ordering::Acquire);
        let g = self.inner.lock(); // VIOLATION: read path must not block
        let x = g.value;
        drop(g);
        if self.version.load(Ordering::Acquire) == v0 {
            return x;
        }
        0
    }

    fn exits_without_validate(&self) -> u64 {
        let v0 = self.version.load(Ordering::Acquire);
        let x = self.cell.load(Ordering::Acquire);
        if x > 7 {
            return x; // VIOLATION: exit path skips the revalidation
        }
        if self.version.load(Ordering::Acquire) == v0 {
            return x;
        }
        0
    }

    fn waived_scratch(&self) -> u64 {
        let v0 = self.version.load(Ordering::Acquire);
        // pmlint: seqlock-ok(cold slow path: runs once per resize, measured)
        let mut scratch = Vec::new();
        scratch.push(self.cell.load(Ordering::Acquire));
        if self.version.load(Ordering::Acquire) == v0 {
            return scratch.len() as u64;
        }
        0
    }

    fn clean_copy_validate(&self) -> u64 {
        let v0 = self.version.load(Ordering::Acquire);
        let x = self.cell.load(Ordering::Acquire);
        if self.version.load(Ordering::Acquire) != v0 {
            return 0;
        }
        x
    }
}
