//! Seeded R10 `guarded-by` violations. The selftest lints this file under
//! the `crates/hart/src/dir.rs` label (R10 rules are scoped by crate and
//! file); under its real fixture path it must stay quiet (scope-negative).
//!
//! Expected findings (under the dir.rs label):
//! * `publish_unlocked` — atomic write to `current` with no resize lock.
//! * `raw_door` — `inner` touched other than through its RwLock methods.
//! * `stash_unprotected` — stash-bucket write lock without a still-held
//!   home-bucket guard.
//!
//! Quiet by design: the same write under the lock, the waived write, the
//! helper whose every caller holds the lock, and the guarded stash write.

use std::sync::atomic::Ordering;

impl Dir {
    fn publish_unlocked(&self, next: *mut Table) {
        self.current.store(next, Ordering::Release);
    }

    fn publish_locked(&self, next: *mut Table) {
        let _st = self.resize.lock();
        self.current.store(next, Ordering::Release);
    }

    fn publish_waived(&self, next: *mut Table) {
        // pmlint: guarded-ok(fixture: single-threaded recovery path, no concurrent readers exist yet)
        self.current.store(next, Ordering::Release);
    }

    fn demote_helper(&self, prev: *mut Table) {
        self.old.store(prev, Ordering::Release);
    }

    fn caller_holds(&self, prev: *mut Table) {
        let _st = self.resize.lock();
        self.demote_helper(prev);
    }

    fn raw_door(&self) -> *const ShardInner {
        self.inner.data_ptr()
    }

    fn stash_unprotected(&self, t: &Table, idx: usize) {
        let sb = t.stash_bucket(idx);
        let mut sg = sb.table.write();
        sg.slots[0] = 1;
    }

    fn stash_protected(&self, t: &Table, idx: usize) {
        let hg = t.bucket(idx).table.write();
        let sb = t.stash_bucket(idx);
        let mut sg = sb.table.write();
        sg.slots[0] = 1;
        drop(hg);
    }
}
