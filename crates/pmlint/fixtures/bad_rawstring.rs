//! Seeded lexer-blind-spot fixture: the only `persist` token after the PM
//! write lives inside a raw string literal, so a lexer that mishandles
//! `r#"…"#` would see the write as covered. The fixed lexer must still
//! report exactly one R1 violation here.
//! Not compiled — consumed by `tests/selftest.rs` as lint input.

fn write_then_log_only(pool: &PmemPool, p: PmPtr) {
    pool.write_bytes(p, &[1, 2, 3]); // VIOLATION: nothing below persists
    let msg = r#"remember to persist(p, 3) later"#;
    let hdr = r##"quoted "# persist marker" inside deeper hashes"##;
    log(msg, hdr);
}

fn covered_control(pool: &PmemPool, p: PmPtr) {
    pool.write_bytes(p, &[9]);
    pool.persist(p, 1);
}
