//! A clean fixture: every rule satisfied. `tests/selftest.rs` asserts the
//! linter stays quiet here. Not compiled.

fn persisted_write(pool: &PmemPool, p: PmPtr) {
    pool.write(p, &42u64);
    pool.persist(p, 8);
}

fn documented_block(w: &Wrapper) -> u8 {
    // SAFETY: `w.0` points into the pool arena, which outlives `w`.
    unsafe { *w.0 }
}

// SAFETY: all fields are plain bytes; any bit pattern is a valid value.
unsafe impl Pod for Header {}

fn acquire_version(s: &Shard) -> u64 {
    s.version.load(Ordering::Acquire)
}

#[test]
fn crash_test_rereads(pool: &PmemPool, leaf: PmPtr) {
    pool.arm_persist_fuse(1);
    pool.simulate_crash();
    let v = leaf_read_pvalue(pool, leaf);
    assert!(v.is_null());
}
