//! Seeded R1 violations: PM writes without covering persists.
//! Not compiled — consumed by `tests/selftest.rs` as lint input.

fn uncovered_write(pool: &PmemPool, p: PmPtr) {
    pool.write(p, &1u64); // VIOLATION: no persist anywhere below
    let _ = pool.read::<u64>(p);
}

fn uncovered_bytes_and_zeros(pool: &PmemPool, p: PmPtr) {
    pool.write_bytes(p, &[1, 2, 3]); // VIOLATION
    pool.write_zeros(p.add(8), 16); // VIOLATION (same fn, still no persist)
}

fn covered_write(pool: &PmemPool, p: PmPtr) {
    pool.write_u64_atomic(p, 7);
    pool.persist(p, 8); // covers the write above
}

fn waived_write(pool: &PmemPool, p: PmPtr) {
    // pmlint: deferred-persist(caller persists the whole object at commit)
    pool.write(p, &1u64);
}

fn lock_acquire_is_not_a_pm_write(lock: &RwLock<u32>) {
    let mut g = lock.write(); // no args: RwLock acquire, not a PM store
    *g += 1;
}
