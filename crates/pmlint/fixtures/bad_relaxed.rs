//! Seeded R3 violations: Relaxed ordering on guarded atomics outside the
//! audited helpers. This file is NOT dir.rs/optimistic.rs, so even an
//! allowlisted function name does not excuse it.
//! Not compiled — consumed by `tests/selftest.rs` as lint input.

fn read_version_racily(s: &Shard) -> u64 {
    s.version.load(Ordering::Relaxed) // VIOLATION: unfenced Relaxed version
}

fn validate(s: &Shard, v0: u64) -> bool {
    // Allowlisted *name*, but wrong file: still a violation.
    s.version.load(Ordering::Relaxed) == v0 // VIOLATION
}

fn bump_migration(o: &Old) -> usize {
    o.migrate_next.fetch_add(1, Ordering::Relaxed) // VIOLATION
}

fn stats_are_fine(d: &Dir) -> u64 {
    d.entries.load(Ordering::Relaxed) // ok: not a version/migration atomic
}

fn waived(s: &Shard) -> u64 {
    // pmlint: relaxed-ok(snapshot for debug printing only, never validated)
    s.version.load(Ordering::Relaxed)
}
