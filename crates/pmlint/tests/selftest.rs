//! pmlint self-tests: every rule must fire on its seeded-violation
//! fixture, stay quiet on the clean fixture, and — the gate that matters —
//! the real workspace must lint clean.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (String, String) {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let label = format!("crates/pmlint/fixtures/{name}");
    (
        label,
        std::fs::read_to_string(&p).expect("fixture readable"),
    )
}

fn lint_fixture(name: &str) -> Vec<pmlint::Violation> {
    let (label, src) = fixture(name);
    pmlint::lint_source(&label, &src)
}

fn rule_lines(vs: &[pmlint::Violation], rule: &str) -> Vec<usize> {
    vs.iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn persist_coverage_rule_fires() {
    let vs = lint_fixture("bad_persist.rs");
    let lines = rule_lines(&vs, "persist-coverage");
    assert_eq!(
        lines.len(),
        3,
        "expected the three uncovered writes, got {vs:?}"
    );
    // The covered, waived and lock-acquire sites stay quiet.
    assert_eq!(vs.len(), 3, "only persist-coverage may fire: {vs:?}");
}

#[test]
fn safety_comment_rule_fires() {
    let vs = lint_fixture("bad_safety.rs");
    let lines = rule_lines(&vs, "safety-comment");
    assert_eq!(
        lines.len(),
        2,
        "expected the undocumented impl + block, got {vs:?}"
    );
    assert_eq!(vs.len(), 2, "only safety-comment may fire: {vs:?}");
}

#[test]
fn relaxed_ordering_rule_fires() {
    let vs = lint_fixture("bad_relaxed.rs");
    let lines = rule_lines(&vs, "relaxed-ordering");
    assert_eq!(
        lines.len(),
        3,
        "expected version x2 + migration counter, got {vs:?}"
    );
    assert_eq!(vs.len(), 3, "only relaxed-ordering may fire: {vs:?}");
}

#[test]
fn ptr_cache_rule_fires() {
    let vs = lint_fixture("bad_ptr_cache.rs");
    let lines = rule_lines(&vs, "ptr-cache");
    assert_eq!(lines.len(), 1, "expected the cached pvalue, got {vs:?}");
    assert_eq!(vs.len(), 1, "only ptr-cache may fire: {vs:?}");
}

#[test]
fn raw_string_does_not_hide_a_missing_persist() {
    // Regression fixture for the lexer blind spot: before raw-string
    // support, the `persist` inside `r#"…"#` counted as coverage and this
    // write slipped through with zero findings.
    let vs = lint_fixture("bad_rawstring.rs");
    let lines = rule_lines(&vs, "persist-coverage");
    assert_eq!(lines.len(), 1, "expected the one uncovered write: {vs:?}");
    assert_eq!(vs.len(), 1, "only persist-coverage may fire: {vs:?}");
}

#[test]
fn nested_comment_does_not_hide_a_missing_persist() {
    // Regression fixture: a depth-unaware lexer leaves the outer block
    // comment at the inner `*/`, sees the commented `persist(p, 16)` as
    // code, and reports nothing.
    let vs = lint_fixture("bad_nested_comment.rs");
    let lines = rule_lines(&vs, "persist-coverage");
    assert_eq!(lines.len(), 1, "expected the one uncovered write: {vs:?}");
    assert_eq!(vs.len(), 1, "only persist-coverage may fire: {vs:?}");
}

#[test]
fn lock_order_table_matches_runtime_ranks() {
    // R5's static table and the runtime lock-witness must agree on the
    // hierarchy, or a passing lint could coexist with a panicking witness
    // (and vice versa).
    let by_name = |n: &str| {
        pmlint::locks::LOCK_ORDER
            .iter()
            .find(|c| c.name == n)
            .unwrap_or_else(|| panic!("LOCK_ORDER lost class {n}"))
            .rank
    };
    assert_eq!(by_name("DIR_RESIZE"), parking_lot::rank::DIR_RESIZE);
    assert_eq!(by_name("BUCKET_ENTRIES"), parking_lot::rank::BUCKET_ENTRIES);
    assert_eq!(by_name("SHARD"), parking_lot::rank::SHARD);
    assert_eq!(by_name("EPALLOC_CLASS"), parking_lot::rank::EPALLOC_CLASS);
    assert_eq!(by_name("LOG_SLOTS"), parking_lot::rank::LOG_SLOTS);
    assert_eq!(by_name("EBR_GARBAGE"), parking_lot::rank::EBR_GARBAGE);
    assert_eq!(by_name("DIR_SCAN_CACHE"), parking_lot::rank::DIR_SCAN_CACHE);
    assert_eq!(by_name("GROUP_COMMIT"), parking_lot::rank::GROUP_COMMIT);
    assert_eq!(by_name("SERVER_CONNS"), parking_lot::rank::SERVER_CONNS);
    assert_eq!(pmlint::locks::LOCK_ORDER.len(), 9, "table drifted");
}

#[test]
fn epoch_escape_rule_fires() {
    let (label, src) = fixture("bad_epoch_escape.rs");
    let r = pmlint::analyze_sources(vec![(label, src)]);
    let lines = rule_lines(&r.violations, "epoch-escape");
    assert_eq!(
        lines.len(),
        4,
        "expected return + field store + publish + use-after-unpin, got {:?}",
        r.violations
    );
    assert_eq!(
        r.violations.len(),
        4,
        "only epoch-escape may fire: {:?}",
        r.violations
    );
    assert_eq!(
        r.waived.iter().filter(|v| v.rule == "epoch-escape").count(),
        1,
        "the waived field store must be reported, not dropped: {:?}",
        r.waived
    );
}

#[test]
fn seqlock_purity_rule_fires() {
    let (label, src) = fixture("bad_seqlock.rs");
    let r = pmlint::analyze_sources(vec![(label, src)]);
    let lines = rule_lines(&r.violations, "seqlock-purity");
    assert_eq!(
        lines.len(),
        5,
        "expected no-validate + alloc + store + lock + unvalidated exit, got {:?}",
        r.violations
    );
    assert_eq!(
        r.violations.len(),
        5,
        "only seqlock-purity may fire: {:?}",
        r.violations
    );
    assert_eq!(
        r.waived
            .iter()
            .filter(|v| v.rule == "seqlock-purity")
            .count(),
        1,
        "the waived scratch alloc must be reported: {:?}",
        r.waived
    );
}

#[test]
fn durable_ack_rule_fires() {
    // R9 is scoped to the server + group-commit sources, so the fixture
    // lints under a `crates/server/src/` label (fixture paths are outside
    // the rule's scope by design — they never pollute the workspace scan).
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_ack_order.rs");
    let src = std::fs::read_to_string(&p).expect("fixture readable");
    let r = pmlint::analyze_sources(vec![(
        "crates/server/src/bad_ack_order.rs".to_string(),
        src,
    )]);
    let lines = rule_lines(&r.violations, "durable-ack");
    assert_eq!(
        lines.len(),
        3,
        "expected early ack + dropped complete + discarded flush count, got {:?}",
        r.violations
    );
    assert_eq!(
        r.violations.len(),
        3,
        "only durable-ack may fire: {:?}",
        r.violations
    );
    assert_eq!(
        r.waived.iter().filter(|v| v.rule == "durable-ack").count(),
        1,
        "the waived per-op ack must be reported: {:?}",
        r.waived
    );
}

#[test]
fn durable_ack_is_scoped_to_server_sources() {
    // The same source under its real fixture path must stay quiet: R9's
    // patterns (`finish`, `complete`, `flush_batches`) are meaningful only
    // in the server/group-commit crates.
    let vs = lint_fixture("bad_ack_order.rs");
    assert!(
        rule_lines(&vs, "durable-ack").is_empty(),
        "R9 leaked outside its scope: {vs:?}"
    );
}

#[test]
fn guarded_by_rule_fires() {
    // R10 rules are scoped by crate/file, so the fixture lints under the
    // dir.rs label (same trick as the R9 fixture; fixture paths are
    // outside every rule's scope by design).
    let (_, src) = fixture("bad_guarded_by.rs");
    let r = pmlint::analyze_sources(vec![("crates/hart/src/dir.rs".to_string(), src)]);
    let lines = rule_lines(&r.violations, "guarded-by");
    assert_eq!(
        lines.len(),
        3,
        "expected unlocked publish + raw door + unguarded stash write, got {:?}",
        r.violations
    );
    assert_eq!(
        r.violations.len(),
        3,
        "only guarded-by may fire: {:?}",
        r.violations
    );
    assert_eq!(
        r.waived.iter().filter(|v| v.rule == "guarded-by").count(),
        1,
        "the waived recovery-path publish must be reported, not dropped: {:?}",
        r.waived
    );
}

#[test]
fn guarded_by_is_scoped_to_declared_crates() {
    // The same source under its real fixture path matches no GUARDED_BY
    // entry (crate `pmlint` declares none) and must stay quiet.
    let vs = lint_fixture("bad_guarded_by.rs");
    assert!(
        vs.is_empty(),
        "R10 leaked outside its declared scope: {vs:?}"
    );
}

#[test]
fn atomic_protocol_rule_fires() {
    let (_, src) = fixture("bad_atomic_protocol.rs");
    let r = pmlint::analyze_sources(vec![(
        "crates/server/src/bad_atomic_protocol.rs".to_string(),
        src,
    )]);
    let lines = rule_lines(&r.violations, "atomic-protocol");
    assert_eq!(
        lines.len(),
        2,
        "expected undeclared `ready` + Relaxed sticky-flag store, got {:?}",
        r.violations
    );
    assert_eq!(
        r.violations.len(),
        2,
        "only atomic-protocol may fire: {:?}",
        r.violations
    );
    assert_eq!(
        r.waived
            .iter()
            .filter(|v| v.rule == "atomic-protocol")
            .count(),
        1,
        "the waived Relaxed store must be reported, not dropped: {:?}",
        r.waived
    );
}

#[test]
fn atomic_protocol_is_scoped_to_workspace_crates() {
    // Under the real fixture path the crate is `pmlint`, which is outside
    // R11 scope (the linter's own sources quote atomic idioms in tables
    // and fixtures) — the same file must stay quiet.
    let vs = lint_fixture("bad_atomic_protocol.rs");
    assert!(vs.is_empty(), "R11 leaked outside its scope: {vs:?}");
}

#[test]
fn let_else_guard_holds_to_function_end() {
    // Regression: `let Some(g) = ….try_lock() else { return };` binds the
    // guard in the *enclosing* scope, but hold-range tracking used to
    // close it at the diverging else block's `}` — flagging
    // `finish_migration`'s retirement store as unguarded.
    let src = "\
impl Dir {
    fn finish(&self, next: *mut Table) {
        let Some(st) = self.resize.try_lock() else {
            return;
        };
        self.old.store(next, Ordering::Release);
        drop(st);
    }
}
";
    let vs = pmlint::lint_source("crates/hart/src/dir.rs", src);
    assert!(
        rule_lines(&vs, "guarded-by").is_empty(),
        "let-else guard hold range regressed: {vs:?}"
    );
}

#[test]
fn racer_tables_are_sane() {
    pmlint::racer::table_sanity().expect("racer declaration tables well-formed");
}

#[test]
fn pattern_liveness_all_alive() {
    // Every declaration-table entry (ACQ_PATTERNS, GUARDED_BY,
    // ATOMIC_PROTOCOLS, GUARD_PARAMS) must match at least one workspace
    // site: a rename that kills a pattern must fail here instead of
    // silently disabling the rule (the PR-9 `entries`→`table` retune
    // found that failure mode the hard way).
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let r = pmlint::analyze_workspace(&root);
    assert!(
        r.liveness.len() > 80,
        "liveness table looks truncated: {} rows",
        r.liveness.len()
    );
    let dead: Vec<String> = r
        .liveness
        .iter()
        .filter(|l| l.hits == 0)
        .map(|l| format!("{} entry `{}`", l.table, l.key))
        .collect();
    assert!(
        dead.is_empty(),
        "{} declaration-table entr(ies) match zero sites — a rename \
         blinded a rule; retune the table:\n{}",
        dead.len(),
        dead.join("\n")
    );
}

#[test]
fn pattern_liveness_reports_dead_entries() {
    // The gate above only means something if the counters actually reach
    // zero on non-matching input: lint a trivial source and check every
    // row reports dead rather than defaulting alive.
    let r = pmlint::analyze_sources(vec![(
        "crates/hart/src/lib.rs".to_string(),
        "fn nothing_here() {}\n".to_string(),
    )]);
    assert!(!r.liveness.is_empty(), "liveness rows missing");
    assert!(
        r.liveness.iter().all(|l| l.hits == 0),
        "phantom liveness hits on empty input: {:?}",
        r.liveness
            .iter()
            .filter(|l| l.hits > 0)
            .map(|l| format!("{}/{}", l.table, l.key))
            .collect::<Vec<_>>()
    );
}

#[test]
fn byte_raw_string_does_not_hide_a_missing_persist() {
    // Regression fixture: a `b`-prefix-blind lexer lets the embedded quote
    // flip string state — the literal's `persist(…)` text becomes fake
    // coverage and the dangling state swallows the next function.
    let vs = lint_fixture("bad_byte_rawstring.rs");
    let lines = rule_lines(&vs, "persist-coverage");
    assert_eq!(lines.len(), 2, "expected both uncovered writes: {vs:?}");
    assert_eq!(vs.len(), 2, "only persist-coverage may fire: {vs:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let vs = lint_fixture("good_clean.rs");
    assert!(vs.is_empty(), "clean fixture must lint clean: {vs:?}");
}

#[test]
fn allowlisted_helpers_in_dir_rs_pass() {
    // The fence-paired seqlock idiom is only legal in the audited helpers
    // of dir.rs/optimistic.rs — same code, allowlisted file + fn name.
    let src = "\
impl Shard {
    fn validate(&self, v0: u64) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == v0
    }
    fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }
}
";
    let vs = pmlint::lint_source("crates/hart/src/dir.rs", src);
    let lines = rule_lines(&vs, "relaxed-ordering");
    assert_eq!(
        lines,
        vec![7],
        "validate allowlisted, bare version() not: {vs:?}"
    );
}

#[test]
fn workspace_lints_clean() {
    // CARGO_MANIFEST_DIR = <root>/crates/pmlint.
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(
        root.join("ROADMAP.md").exists(),
        "mislocated root: {root:?}"
    );
    let (files, vs) = pmlint::lint_workspace(&root);
    assert!(files > 50, "workspace scan looks truncated: {files} files");
    assert!(
        vs.is_empty(),
        "workspace must lint clean, {} violation(s):\n{}",
        vs.len(),
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
