//! The FPTree index: fingerprinted PM leaves + volatile inner index.

use crate::pmleaf::*;
use hart_kv::{Error, InlineKey, Key, MemoryStats, PersistentIndex, Result, Value};
use hart_pm::{PmPtr, PmemPool, PoolConfig};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: u64 = 0x4650_5452_4545_3031; // "FPTREE01"
const FULL: u64 = (1 << LEAF_CAP) - 1;

/// Volatile inner index: separator key → leaf. The first leaf's separator
/// is the empty key so every lookup routes somewhere.
struct Inner {
    map: BTreeMap<InlineKey, PmPtr>,
}

impl Inner {
    fn find_leaf(&self, key: &[u8]) -> Option<PmPtr> {
        self.map
            .range(..=InlineKey::from_slice(key))
            .next_back()
            .map(|(_, &l)| l)
    }
}

/// The Fingerprinting Persistent Tree.
pub struct FpTree {
    pool: Arc<PmemPool>,
    inner: RwLock<Inner>,
    len: AtomicUsize,
    head_slot: PmPtr,
    slog: PmPtr,
}

impl FpTree {
    /// Format a fresh pool.
    pub fn create(pool: Arc<PmemPool>) -> Result<FpTree> {
        let base = pool.root_area(32);
        pool.write_zeros(base, 32);
        pool.persist(base, 32);
        pool.write_u64_atomic(base, MAGIC);
        pool.persist(base, 8);
        Ok(FpTree {
            head_slot: base.add(8),
            slog: base.add(16),
            pool,
            inner: RwLock::new(Inner {
                map: BTreeMap::new(),
            }),
            len: AtomicUsize::new(0),
        })
    }

    /// Recover from an existing pool: replay a crashed split, then rebuild
    /// the volatile inner index by walking the linked leaf list — the
    /// Fig. 10c experiment ("FPTree needs much less insertions than HART
    /// does, which leads to a much shorter recovery time").
    pub fn recover(pool: Arc<PmemPool>) -> Result<FpTree> {
        let base = pool.root_area(32);
        if pool.read::<u64>(base) != MAGIC {
            return Err(Error::Corrupted("bad FPTree magic"));
        }
        pool.reset_volatile_alloc();
        let t = FpTree {
            head_slot: base.add(8),
            slog: base.add(16),
            pool,
            inner: RwLock::new(Inner {
                map: BTreeMap::new(),
            }),
            len: AtomicUsize::new(0),
        };
        t.replay_split_log();
        t.rebuild_inner();
        Ok(t)
    }

    /// Convenience constructor: fresh pool from a config.
    pub fn with_config(cfg: PoolConfig) -> Result<FpTree> {
        FpTree::create(Arc::new(PmemPool::new(cfg)))
    }

    /// The underlying pool.
    pub fn pm_pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn replay_split_log(&self) {
        let pool = &self.pool;
        let old = PmPtr(pool.read::<u64>(self.slog));
        let new = PmPtr(pool.read::<u64>(self.slog.add(8)));
        if old.is_null() || new.is_null() {
            if !old.is_null() || !new.is_null() {
                pool.write_zeros(self.slog, 16);
                pool.persist(self.slog, 16);
            }
            return;
        }
        if pnext(pool, old) != new {
            // Crash before the new leaf was linked: discard it.
            free_leaf(pool, new);
        } else {
            // Linked: remove from the old leaf every entry duplicated into
            // the new one (keys ≥ the new leaf's minimum live key).
            if let Some(split_key) = min_live_key(pool, new) {
                let mut bm = bitmap(pool, old);
                for slot in 0..LEAF_CAP {
                    if bm & (1 << slot) != 0 && entry_key(pool, old, slot) >= split_key {
                        bm &= !(1 << slot);
                    }
                }
                set_bitmap(pool, old, bm);
            }
        }
        pool.write_zeros(self.slog, 16);
        pool.persist(self.slog, 16);
    }

    fn rebuild_inner(&self) {
        let pool = &self.pool;
        let mut g = self.inner.write();
        g.map.clear();
        let mut total = 0usize;
        let mut prev: Option<PmPtr> = None;
        let mut first_kept = true;
        let mut cur = PmPtr(pool.read::<u64>(self.head_slot));
        while !cur.is_null() {
            let next = pnext(pool, cur);
            let bm = bitmap(pool, cur);
            if bm == 0 {
                // Empty (or crash-orphaned) leaf: unlink and free.
                match prev {
                    None => {
                        pool.write_u64_atomic(self.head_slot, next.offset());
                        pool.persist(self.head_slot, 8);
                    }
                    Some(p) => set_pnext(pool, p, next),
                }
                free_leaf(pool, cur);
            } else {
                let sep = if first_kept {
                    InlineKey::EMPTY
                } else {
                    min_live_key(pool, cur).expect("non-empty leaf")
                };
                g.map.insert(sep, cur);
                total += bm.count_ones() as usize;
                first_kept = false;
                prev = Some(cur);
            }
            cur = next;
        }
        self.len.store(total, Ordering::Relaxed);
    }

    /// Find `key`'s slot within `leaf` using the fingerprint array first.
    fn find_slot(&self, leaf: PmPtr, key: &[u8]) -> Option<usize> {
        let pool = &self.pool;
        let fp = fingerprint(key);
        let bm = bitmap(pool, leaf);
        let fps = fps(pool, leaf);
        (0..LEAF_CAP).find(|&slot| {
            bm & (1 << slot) != 0
                && fps[slot] == fp
                && entry_key(pool, leaf, slot).as_slice() == key
        })
    }

    fn update_value_at(&self, leaf: PmPtr, slot: usize, value: &Value) -> Result<()> {
        let pool = &self.pool;
        let (old, old_len) = entry_pvalue(pool, leaf, slot);
        let new = alloc_value(pool, value)?;
        set_entry_pvalue(pool, leaf, slot, new, value.len());
        if !old.is_null() {
            free_value(pool, old, old_len);
        }
        Ok(())
    }

    /// Split `leaf` at its median key (FPTree's logged leaf split).
    fn split(&self, inner: &mut Inner, leaf: PmPtr) -> Result<()> {
        let pool = &self.pool;
        let bm = bitmap(pool, leaf);
        let mut live: Vec<(usize, InlineKey)> = (0..LEAF_CAP)
            .filter(|&s| bm & (1 << s) != 0)
            .map(|s| (s, entry_key(pool, leaf, s)))
            .collect();
        live.sort_unstable_by_key(|a| a.1);
        let upper = &live[live.len() / 2..];
        let split_key = upper[0].1;

        // Build the new leaf fully before publication.
        let new = alloc_leaf(pool)?;
        let mut new_bm = 0u64;
        for (i, (old_slot, key)) in upper.iter().enumerate() {
            let (pv, vlen) = entry_pvalue(pool, leaf, *old_slot);
            let k = Key::new(key.as_slice()).expect("stored key is valid");
            write_entry(pool, new, i, &k, pv, vlen);
            write_fp(pool, new, i, fingerprint(key.as_slice()));
            new_bm |= 1 << i;
        }
        pool.write(new.add(super::pmleaf::OFF_BITMAP), &new_bm);
        pool.write(
            new.add(super::pmleaf::OFF_PNEXT),
            &pnext(pool, leaf).offset(),
        );
        pool.persist(new, LEAF_BYTES); // whole leaf, one persistent() call

        // Micro-log the split, then link and truncate.
        pool.write(self.slog, &leaf.offset());
        pool.write(self.slog.add(8), &new.offset());
        pool.persist(self.slog, 16);
        set_pnext(pool, leaf, new);
        let moved: u64 = upper.iter().map(|(s, _)| 1u64 << s).sum();
        set_bitmap(pool, leaf, bm & !moved);
        pool.write_zeros(self.slog, 16);
        pool.persist(self.slog, 16);

        inner.map.insert(split_key, new);
        Ok(())
    }

    /// Unlink and free a now-empty leaf, fixing the chain and the inner map.
    fn drop_empty_leaf(&self, inner: &mut Inner, leaf: PmPtr, key: &[u8]) {
        let pool = &self.pool;
        let sep = *inner
            .map
            .range(..=InlineKey::from_slice(key))
            .next_back()
            .expect("leaf was found via the map")
            .0;
        let next = pnext(pool, leaf);
        if sep.is_empty() {
            // Head leaf: advance the head; the next leaf (if any) inherits
            // the empty separator.
            pool.write_u64_atomic(self.head_slot, next.offset());
            pool.persist(self.head_slot, 8);
            inner.map.remove(&sep);
            if !next.is_null() {
                let next_sep = *inner
                    .map
                    .iter()
                    .next()
                    .expect("next leaf has a separator")
                    .0;
                let ptr = inner.map.remove(&next_sep).expect("present");
                debug_assert_eq!(ptr, next);
                inner.map.insert(InlineKey::EMPTY, ptr);
            }
        } else {
            let prev = *inner
                .map
                .range(..sep)
                .next_back()
                .expect("non-head leaf has a predecessor")
                .1;
            set_pnext(pool, prev, next);
            inner.map.remove(&sep);
        }
        free_leaf(pool, leaf);
    }
}

fn min_live_key(pool: &PmemPool, leaf: PmPtr) -> Option<InlineKey> {
    let bm = bitmap(pool, leaf);
    (0..LEAF_CAP)
        .filter(|&s| bm & (1 << s) != 0)
        .map(|s| entry_key(pool, leaf, s))
        .min()
}

impl PersistentIndex for FpTree {
    fn insert(&self, key: &Key, value: &Value) -> Result<()> {
        let mut g = self.inner.write();
        let pool = &self.pool;
        if g.map.is_empty() {
            let first = alloc_leaf(pool)?;
            pool.persist(first, LEAF_BYTES);
            pool.write_u64_atomic(self.head_slot, first.offset());
            pool.persist(self.head_slot, 8);
            g.map.insert(InlineKey::EMPTY, first);
        }
        loop {
            let leaf = g.find_leaf(key.as_slice()).expect("map is non-empty");
            if let Some(slot) = self.find_slot(leaf, key.as_slice()) {
                return self.update_value_at(leaf, slot, value);
            }
            let bm = bitmap(pool, leaf);
            if bm != FULL {
                let slot = (!bm).trailing_zeros() as usize;
                let vptr = alloc_value(pool, value)?;
                write_entry(pool, leaf, slot, key, vptr, value.len());
                persist_entry(pool, leaf, slot);
                write_fp(pool, leaf, slot, fingerprint(key.as_slice()));
                pool.persist(leaf.add(super::pmleaf::OFF_FPS + slot as u64), 1);
                set_bitmap(pool, leaf, bm | (1 << slot)); // atomic commit
                self.len.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            self.split(&mut g, leaf)?;
        }
    }

    fn search(&self, key: &Key) -> Result<Option<Value>> {
        let g = self.inner.read();
        let pool = &self.pool;
        let Some(leaf) = g.find_leaf(key.as_slice()) else {
            return Ok(None);
        };
        Ok(self.find_slot(leaf, key.as_slice()).map(|slot| {
            let (pv, len) = entry_pvalue(pool, leaf, slot);
            read_value(pool, pv, len)
        }))
    }

    fn update(&self, key: &Key, value: &Value) -> Result<bool> {
        let g = self.inner.write();
        let Some(leaf) = g.find_leaf(key.as_slice()) else {
            return Ok(false);
        };
        match self.find_slot(leaf, key.as_slice()) {
            Some(slot) => {
                self.update_value_at(leaf, slot, value)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn remove(&self, key: &Key) -> Result<bool> {
        let mut g = self.inner.write();
        let pool = &self.pool;
        let Some(leaf) = g.find_leaf(key.as_slice()) else {
            return Ok(false);
        };
        let Some(slot) = self.find_slot(leaf, key.as_slice()) else {
            return Ok(false);
        };
        let (pv, vlen) = entry_pvalue(pool, leaf, slot);
        let bm = bitmap(pool, leaf) & !(1 << slot);
        set_bitmap(pool, leaf, bm); // atomic invalidation
        if !pv.is_null() {
            free_value(pool, pv, vlen);
        }
        self.len.fetch_sub(1, Ordering::Relaxed);
        if bm == 0 {
            self.drop_empty_leaf(&mut g, leaf, key.as_slice());
        }
        Ok(true)
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn memory_stats(&self) -> MemoryStats {
        let g = self.inner.read();
        // BTreeMap node overhead approximated at ~48 B per entry on top of
        // the (separator, pointer) payload.
        let dram = std::mem::size_of::<Self>()
            + g.map.len() * (std::mem::size_of::<(InlineKey, PmPtr)>() + 48);
        MemoryStats {
            dram_bytes: dram,
            pm_bytes: self.pool.stats().snapshot().bytes_in_use as usize,
        }
    }

    /// FPTree's native strength (Fig. 10a): leaves are linked in key order,
    /// so a range scan walks consecutive leaves instead of issuing per-key
    /// searches.
    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        let g = self.inner.read();
        let pool = &self.pool;
        let (s, e) = (start.as_slice(), end.as_slice());
        let mut out = Vec::new();
        if s > e || g.map.is_empty() {
            return Ok(out);
        }
        let first_sep = *g
            .map
            .range(..=InlineKey::from_slice(s))
            .next_back()
            .map(|(k, _)| k)
            .unwrap_or_else(|| g.map.iter().next().expect("non-empty").0);
        for (sep, &leaf) in g.map.range(first_sep..) {
            if sep.as_slice() > e {
                break;
            }
            let bm = bitmap(pool, leaf);
            for slot in 0..LEAF_CAP {
                if bm & (1 << slot) != 0 {
                    let k = entry_key(pool, leaf, slot);
                    let ks = k.as_slice();
                    if ks >= s && ks <= e {
                        let (pv, len) = entry_pvalue(pool, leaf, slot);
                        out.push((
                            Key::new(ks).expect("stored key is valid"),
                            read_value(pool, pv, len),
                        ));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|a| a.0);
        Ok(out)
    }

    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let g = self.inner.read();
        let pool = &self.pool;
        let (s, e) = (start.as_slice(), end.as_slice());
        let mut out = Vec::new();
        if s > e || limit == 0 || g.map.is_empty() {
            return Ok(out);
        }
        let first_sep = *g
            .map
            .range(..=InlineKey::from_slice(s))
            .next_back()
            .map(|(k, _)| k)
            .unwrap_or_else(|| g.map.iter().next().expect("non-empty").0);
        for (sep, &leaf) in g.map.range(first_sep..) {
            if sep.as_slice() > e {
                break;
            }
            let bm = bitmap(pool, leaf);
            for slot in 0..LEAF_CAP {
                if bm & (1 << slot) != 0 {
                    let k = entry_key(pool, leaf, slot);
                    let ks = k.as_slice();
                    if ks >= s && ks <= e {
                        let (pv, len) = entry_pvalue(pool, leaf, slot);
                        out.push((
                            Key::new(ks).expect("stored key is valid"),
                            read_value(pool, pv, len),
                        ));
                    }
                }
            }
            // Leaves partition the keyspace in separator order, so once this
            // leaf pushed the count past `limit`, every later leaf only holds
            // larger keys. Entries *within* a leaf are unsorted, hence the
            // sort-then-truncate below rather than an in-loop cutoff.
            if out.len() >= limit {
                break;
            }
        }
        out.sort_unstable_by_key(|a| a.0);
        out.truncate(limit);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "FPTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Model;

    fn fresh() -> FpTree {
        FpTree::with_config(PoolConfig::test_small()).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::from_str(s).unwrap()
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn basic_roundtrip() {
        let t = fresh();
        t.insert(&k("apple"), &v(1)).unwrap();
        t.insert(&k("banana"), &v(2)).unwrap();
        assert_eq!(t.search(&k("apple")).unwrap().unwrap().as_u64(), 1);
        assert_eq!(t.search(&k("banana")).unwrap().unwrap().as_u64(), 2);
        assert_eq!(t.search(&k("cherry")).unwrap(), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fills_and_splits_leaves() {
        let t = fresh();
        let n = LEAF_CAP * 5 + 3;
        for i in 0..n as u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.inner.read().map.len() >= 5, "splits must create leaves");
        for i in 0..n as u64 {
            assert_eq!(
                t.search(&Key::from_u64_base62(i, 6))
                    .unwrap()
                    .unwrap()
                    .as_u64(),
                i,
                "key {i}"
            );
        }
    }

    #[test]
    fn upsert_and_update() {
        let t = fresh();
        t.insert(&k("key"), &v(1)).unwrap();
        t.insert(&k("key"), &v(2)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(&k("key")).unwrap().unwrap().as_u64(), 2);
        assert!(t
            .update(&k("key"), &Value::new(b"0123456789abcdef").unwrap())
            .unwrap());
        assert_eq!(
            t.search(&k("key")).unwrap().unwrap().as_slice(),
            b"0123456789abcdef"
        );
        assert!(!t.update(&k("missing"), &v(0)).unwrap());
    }

    #[test]
    fn matches_model() {
        let t = fresh();
        let mut model: Model<String, u64> = Model::new();
        let mut state = 0xfeed_f00du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let r = rng();
            let key_s = format!("K{:03}", r % 400);
            let key = k(&key_s);
            match r % 4 {
                0 | 1 => {
                    t.insert(&key, &v(r)).unwrap();
                    model.insert(key_s, r);
                }
                2 => {
                    assert_eq!(t.remove(&key).unwrap(), model.remove(&key_s).is_some());
                }
                _ => {
                    assert_eq!(
                        t.search(&key).unwrap().map(|x| x.as_u64()),
                        model.get(&key_s).copied(),
                        "search {key_s}"
                    );
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn range_scan_is_sorted() {
        let t = fresh();
        for i in (0..300u64).rev() {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        let lo = Key::from_u64_base62(50, 6);
        let hi = Key::from_u64_base62(150, 6);
        let got = t.range(&lo, &hi).unwrap();
        assert_eq!(got.len(), 101);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(got[0].1.as_u64(), 50);
    }

    #[test]
    fn recover_rebuilds_inner_index() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let t = FpTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..1000u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        t.remove(&Key::from_u64_base62(77, 6)).unwrap();
        drop(t);
        let r = FpTree::recover(pool).unwrap();
        assert_eq!(r.len(), 999);
        for i in 0..1000u64 {
            let got = r.search(&Key::from_u64_base62(i, 6)).unwrap();
            if i == 77 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got.unwrap().as_u64(), i, "key {i}");
            }
        }
        // Inserts keep working after recovery.
        r.insert(&k("post-recovery"), &v(1)).unwrap();
        assert!(r.search(&k("post-recovery")).unwrap().is_some());
    }

    #[test]
    fn crash_mid_split_recovers() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_crash()));
        let t = FpTree::create(Arc::clone(&pool)).unwrap();
        // Fill exactly one leaf so the next insert splits it.
        for i in 0..LEAF_CAP as u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        // Manually run a split and "crash" right after the log is armed
        // but before the new leaf is linked.
        {
            let g = t.inner.read();
            let leaf = g.find_leaf(b"0").unwrap();
            drop(g);
            let new = alloc_leaf(&pool).unwrap();
            pool.persist(new, LEAF_BYTES);
            pool.write(t.slog, &leaf.offset());
            pool.write(t.slog.add(8), &new.offset());
            pool.persist(t.slog, 16);
        }
        drop(t);
        pool.simulate_crash();
        let r = FpTree::recover(Arc::clone(&pool)).unwrap();
        assert_eq!(r.len(), LEAF_CAP, "no records may be lost or duplicated");
        for i in 0..LEAF_CAP as u64 {
            assert_eq!(
                r.search(&Key::from_u64_base62(i, 6))
                    .unwrap()
                    .unwrap()
                    .as_u64(),
                i
            );
        }
    }

    #[test]
    fn empty_leaf_is_unlinked() {
        let t = fresh();
        for i in 0..(LEAF_CAP * 3) as u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        let leaves_before = t.inner.read().map.len();
        for i in 0..(LEAF_CAP * 3) as u64 {
            assert!(t.remove(&Key::from_u64_base62(i, 6)).unwrap());
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.inner.read().map.len(), 0);
        assert!(leaves_before >= 3);
        // Tree is still usable.
        t.insert(&k("again"), &v(9)).unwrap();
        assert_eq!(t.search(&k("again")).unwrap().unwrap().as_u64(), 9);
    }

    #[test]
    fn memory_split_dram_pm() {
        let t = fresh();
        for i in 0..2000u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        let m = t.memory_stats();
        assert!(
            m.pm_bytes > m.dram_bytes,
            "leaves dominate; inner index is small"
        );
        assert!(m.dram_bytes > 0);
    }
}
