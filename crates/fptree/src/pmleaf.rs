//! The PM leaf-node layout of FPTree.
//!
//! ```text
//! offset  0   bitmap        u64 (low LEAF_CAP bits)
//! offset  8   pnext         u64 (next leaf in key order)
//! offset 16   fingerprints  [u8; LEAF_CAP]
//! offset 48   entries       [Entry; LEAF_CAP]
//! ```
//!
//! Each 40-byte entry reuses the workspace leaf layout: `key[24] | key_len |
//! val_len | pad | p_value`. Total leaf size: 48 + 32·40 = 1328 bytes,
//! allocated at 2 KiB alignment.

use hart_kv::{Error, InlineKey, Key, Result, Value, MAX_VALUE_LEN};
use hart_pm::{PmPtr, PmemPool};

/// Records per leaf.
pub const LEAF_CAP: usize = 32;

pub(crate) const OFF_BITMAP: u64 = 0;
pub(crate) const OFF_PNEXT: u64 = 8;
pub(crate) const OFF_FPS: u64 = 16;
pub(crate) const OFF_ENTRIES: u64 = 48;
pub(crate) const ENTRY_SIZE: u64 = 40;

/// Total leaf size in bytes.
pub const LEAF_BYTES: usize = (OFF_ENTRIES + LEAF_CAP as u64 * ENTRY_SIZE) as usize;
/// Allocation alignment.
pub const LEAF_ALIGN: u64 = 2048;

const BITMAP_MASK: u64 = (1 << LEAF_CAP) - 1;

/// The 1-byte fingerprint of a key (FNV-1a folded to 8 bits).
#[inline]
pub fn fingerprint(key: &[u8]) -> u8 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h ^ (h >> 32)) as u8
}

/// Allocate a zeroed leaf.
pub(crate) fn alloc_leaf(pool: &PmemPool) -> Result<PmPtr> {
    pool.alloc_raw(LEAF_BYTES, LEAF_ALIGN)
        .ok_or(Error::PmExhausted)
}

/// Free a leaf.
pub(crate) fn free_leaf(pool: &PmemPool, leaf: PmPtr) {
    pool.free_raw(leaf, LEAF_BYTES, LEAF_ALIGN);
}

#[inline]
pub(crate) fn bitmap(pool: &PmemPool, leaf: PmPtr) -> u64 {
    pool.read::<u64>(leaf.add(OFF_BITMAP)) & BITMAP_MASK
}

/// Write + persist the bitmap (an 8-byte atomic commit, as in FPTree).
pub(crate) fn set_bitmap(pool: &PmemPool, leaf: PmPtr, bm: u64) {
    pool.write_u64_atomic(leaf.add(OFF_BITMAP), bm & BITMAP_MASK);
    pool.persist(leaf.add(OFF_BITMAP), 8);
}

#[inline]
pub(crate) fn pnext(pool: &PmemPool, leaf: PmPtr) -> PmPtr {
    PmPtr(pool.read::<u64>(leaf.add(OFF_PNEXT)))
}

pub(crate) fn set_pnext(pool: &PmemPool, leaf: PmPtr, next: PmPtr) {
    pool.write_u64_atomic(leaf.add(OFF_PNEXT), next.offset());
    pool.persist(leaf.add(OFF_PNEXT), 8);
}

pub(crate) fn write_fp(pool: &PmemPool, leaf: PmPtr, slot: usize, fp: u8) {
    pool.write(leaf.add(OFF_FPS + slot as u64), &fp);
}

/// Read the whole fingerprint array (one PM line).
pub(crate) fn fps(pool: &PmemPool, leaf: PmPtr) -> [u8; LEAF_CAP] {
    let mut buf = [0u8; LEAF_CAP];
    pool.read_bytes(leaf.add(OFF_FPS), &mut buf);
    buf
}

#[inline]
pub(crate) fn entry_ptr(leaf: PmPtr, slot: usize) -> PmPtr {
    debug_assert!(slot < LEAF_CAP);
    leaf.add(OFF_ENTRIES + ENTRY_SIZE * slot as u64)
}

/// Write a full entry (key, lengths, value pointer); caller persists.
pub(crate) fn write_entry(
    pool: &PmemPool,
    leaf: PmPtr,
    slot: usize,
    key: &Key,
    p_value: PmPtr,
    val_len: usize,
) {
    let e = entry_ptr(leaf, slot);
    hart_epalloc::leaf_write_key(pool, e, key);
    hart_epalloc::leaf_write_pvalue(pool, e, p_value, val_len);
}

/// Persist a full entry (one `persistent()` call).
pub(crate) fn persist_entry(pool: &PmemPool, leaf: PmPtr, slot: usize) {
    pool.persist(entry_ptr(leaf, slot), ENTRY_SIZE as usize);
}

pub(crate) fn entry_key(pool: &PmemPool, leaf: PmPtr, slot: usize) -> InlineKey {
    hart_epalloc::leaf_read_key(pool, entry_ptr(leaf, slot))
}

pub(crate) fn entry_pvalue(pool: &PmemPool, leaf: PmPtr, slot: usize) -> (PmPtr, usize) {
    let e = entry_ptr(leaf, slot);
    (
        hart_epalloc::leaf_read_pvalue(pool, e),
        hart_epalloc::leaf_read_val_len(pool, e),
    )
}

pub(crate) fn set_entry_pvalue(
    pool: &PmemPool,
    leaf: PmPtr,
    slot: usize,
    p_value: PmPtr,
    val_len: usize,
) {
    let e = entry_ptr(leaf, slot);
    hart_epalloc::leaf_write_pvalue(pool, e, p_value, val_len);
    hart_epalloc::persist_leaf_pvalue(pool, e);
}

// ------------------------------------------------------------------ values

/// Allocate + persist an out-of-leaf value object.
pub(crate) fn alloc_value(pool: &PmemPool, v: &Value) -> Result<PmPtr> {
    let size = v.class_size();
    let p = pool.alloc_raw(size, 8).ok_or(Error::PmExhausted)?;
    pool.write_bytes(p, v.as_slice());
    pool.persist(p, size);
    Ok(p)
}

pub(crate) fn free_value(pool: &PmemPool, p: PmPtr, len: usize) {
    pool.free_raw(p, if len <= 8 { 8 } else { 16 }, 8);
}

pub(crate) fn read_value(pool: &PmemPool, p: PmPtr, len: usize) -> Value {
    let len = len.min(MAX_VALUE_LEN);
    let mut buf = [0u8; MAX_VALUE_LEN];
    pool.read_bytes(p, &mut buf[..len.max(1)]);
    Value::new(&buf[..len]).expect("bounded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_pm::PoolConfig;

    #[test]
    fn geometry() {
        assert_eq!(LEAF_BYTES, 1328);
        assert!(LEAF_ALIGN >= LEAF_BYTES as u64);
    }

    #[test]
    fn fingerprints_spread() {
        // Not a cryptographic property test — just confirm variety.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u32 {
            seen.insert(fingerprint(format!("key{i}").as_bytes()));
        }
        assert!(
            seen.len() > 100,
            "fingerprints too collision-prone: {}",
            seen.len()
        );
    }

    #[test]
    fn entry_roundtrip() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = alloc_leaf(&pool).unwrap();
        let key = Key::from_str("hello").unwrap();
        write_entry(&pool, leaf, 5, &key, PmPtr(0x800), 8);
        persist_entry(&pool, leaf, 5);
        assert_eq!(entry_key(&pool, leaf, 5).as_slice(), b"hello");
        assert_eq!(entry_pvalue(&pool, leaf, 5), (PmPtr(0x800), 8));
    }

    #[test]
    fn bitmap_and_pnext() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = alloc_leaf(&pool).unwrap();
        assert_eq!(bitmap(&pool, leaf), 0);
        set_bitmap(&pool, leaf, 0b1011);
        assert_eq!(bitmap(&pool, leaf), 0b1011);
        set_pnext(&pool, leaf, PmPtr(0x4000));
        assert_eq!(pnext(&pool, leaf), PmPtr(0x4000));
    }
}
