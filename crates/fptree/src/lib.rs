//! FPTree — the Fingerprinting Persistent Tree of Oukid et al. (SIGMOD
//! 2016), the paper's hybrid SCM-DRAM baseline.
//!
//! Like HART, FPTree splits its state across the memory tiers:
//!
//! * **PM**: unsorted leaf nodes linked in key order. Each leaf carries a
//!   bitmap, a next pointer, and one **fingerprint** (a 1-byte key hash)
//!   per slot — "by scanning a fingerprint first, the number of in-leaf
//!   probed keys is limited to one" in expectation;
//! * **DRAM**: the inner B+-tree, rebuilt on recovery by walking the leaf
//!   list. This implementation uses `std::collections::BTreeMap` (a DRAM
//!   B-tree) from leaf *separator keys* to leaf pointers — the same role,
//!   data structure family and asymptotics as FPTree's transient inner
//!   nodes (see DESIGN.md).
//!
//! Leaves are never coalesced when they underflow — the paper calls this
//! out as the reason "FPTree consumes more PM space than HART does" — but
//! a completely empty leaf is unlinked and freed.
//!
//! Splits are protected by a micro-log in the PM root page, so their
//! persist-ordering cost matches the original design.

mod pmleaf;
mod tree;

pub use pmleaf::LEAF_CAP;
pub use tree::FpTree;
