//! The adaptive radix tree proper: search / insert / remove / ordered scans.

use crate::node::{retire, Child, Node};
use hart_kv::{InlineKey, MAX_KEY_LEN};
use std::mem::size_of;

/// Resolves the (ART-)key bytes of an external leaf handle.
///
/// HART's resolver reads the full key from the PM leaf node and strips the
/// hash prefix, charging emulated PM read latency; test resolvers return an
/// owned copy. Called only where a textbook ART would touch a leaf: final
/// key comparison and lazy-expansion splits.
pub trait KeyResolver<L> {
    /// Load the full ART key of `leaf`.
    fn load_key(&self, leaf: &L) -> InlineKey;
}

/// A self-describing leaf for tests and volatile use of the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwnedLeaf {
    pub key: InlineKey,
    pub val: u64,
}

impl OwnedLeaf {
    /// Build from raw parts.
    pub fn new(key: &[u8], val: u64) -> OwnedLeaf {
        OwnedLeaf {
            key: InlineKey::from_slice(key),
            val,
        }
    }
}

/// Resolver for [`OwnedLeaf`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SliceResolver;

impl KeyResolver<OwnedLeaf> for SliceResolver {
    #[inline]
    fn load_key(&self, leaf: &OwnedLeaf) -> InlineKey {
        leaf.key
    }
}

/// Byte `i` of the terminated view of `key` (see crate docs).
#[inline]
pub(crate) fn tb(key: &[u8], i: usize) -> u8 {
    if i >= key.len() {
        0
    } else {
        key[i]
    }
}

/// Concatenate `a ++ [eb] ++ b` into a prefix (delete-side path compression).
fn concat_prefix(a: &InlineKey, eb: u8, b: &InlineKey) -> InlineKey {
    let mut buf = [0u8; MAX_KEY_LEN];
    let total = a.len() + 1 + b.len();
    assert!(
        total <= MAX_KEY_LEN,
        "reconstructed prefix exceeds max key length"
    );
    buf[..a.len()].copy_from_slice(a.as_slice());
    buf[a.len()] = eb;
    buf[a.len() + 1..total].copy_from_slice(b.as_slice());
    InlineKey::from_slice(&buf[..total])
}

/// A volatile adaptive radix tree over external leaf handles `L`.
///
/// See the crate docs for the overall design. All mutating operations take
/// `&mut self`; HART wraps each `Art` in the per-ART `RwLock` of §III-A.3.
pub struct Art<L> {
    pub(crate) root: Option<Child<L>>,
    len: usize,
    /// When set, every heap block unlinked by a mutation is handed to the
    /// epoch reclaimer instead of freed — required while optimistic readers
    /// may traverse this tree without holding its lock.
    defer: bool,
}

impl<L> Default for Art<L> {
    fn default() -> Self {
        Art::new()
    }
}

impl<L> Art<L> {
    /// Empty tree.
    pub fn new() -> Art<L> {
        Art {
            root: None,
            len: 0,
            defer: false,
        }
    }

    /// Route unlinked nodes through epoch-based reclamation (see
    /// [`hart_ebr`]) instead of freeing them inline. HART enables this on
    /// every shard ART so its lock-free read path never touches freed
    /// memory; the default (`false`) keeps single-owner uses allocation-
    /// cheap.
    pub fn set_deferred_reclaim(&mut self, on: bool) {
        self.defer = on;
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no leaves are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all contents.
    pub fn clear(&mut self)
    where
        L: Send + 'static,
    {
        if let Some(root) = self.root.take() {
            retire(root, self.defer);
        }
        self.len = 0;
    }

    /// Root child, for the iterator module.
    pub(crate) fn root_child(&self) -> Option<&Child<L>> {
        self.root.as_ref()
    }

    /// Point lookup. `key` is the raw ART key (≤ 24 bytes, no interior NUL).
    pub fn search<R: KeyResolver<L>>(&self, r: &R, key: &[u8]) -> Option<&L> {
        let mut child = self.root.as_ref()?;
        let mut depth = 0usize;
        loop {
            match child {
                Child::Leaf(l) => {
                    return if r.load_key(l).as_slice() == key {
                        Some(l)
                    } else {
                        None
                    };
                }
                Child::Inner(n) => {
                    let p = n.prefix.as_slice();
                    if key.len() < depth + p.len() || &key[depth..depth + p.len()] != p {
                        return None;
                    }
                    depth += p.len();
                    child = n.get(tb(key, depth))?;
                    depth += 1;
                }
            }
        }
    }

    /// Insert `leaf` under `key`, returning the previously stored leaf if
    /// the key already existed (the caller — HART's Algorithm 1 — normally
    /// checks with `search` first and routes duplicates to its update path,
    /// but replacement keeps this structure self-contained).
    pub fn insert<R: KeyResolver<L>>(&mut self, r: &R, key: &[u8], leaf: L) -> Option<L>
    where
        L: Send + 'static,
    {
        debug_assert!(key.len() <= MAX_KEY_LEN, "ART key too long");
        debug_assert!(!key.contains(&0), "ART key contains NUL");
        let defer = self.defer;
        match self.root.as_mut() {
            None => {
                self.root = Some(Child::Leaf(leaf));
                self.len += 1;
                None
            }
            Some(slot) => {
                let replaced = insert_rec(r, slot, key, 0, leaf, defer);
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
        }
    }

    /// Remove the leaf stored under `key`, if any.
    pub fn remove<R: KeyResolver<L>>(&mut self, r: &R, key: &[u8]) -> Option<L>
    where
        L: Send + 'static,
    {
        let defer = self.defer;
        enum RootAction {
            TakeLeaf,
            Collapse,
            Keep,
        }
        let (removed, action) = match self.root.as_mut()? {
            Child::Leaf(l) => {
                if r.load_key(l).as_slice() == key {
                    (None, RootAction::TakeLeaf)
                } else {
                    return None;
                }
            }
            Child::Inner(node) => {
                let removed = remove_rec(r, node, key, 0, defer)?;
                let action = if node.count == 1 {
                    RootAction::Collapse
                } else {
                    RootAction::Keep
                };
                (Some(removed), action)
            }
        };
        match action {
            RootAction::TakeLeaf => {
                let Some(Child::Leaf(l)) = self.root.take() else {
                    unreachable!()
                };
                self.len -= 1;
                Some(l)
            }
            RootAction::Collapse => {
                let Some(Child::Inner(mut node)) = self.root.take() else {
                    unreachable!()
                };
                let (eb, gc) = node.take_only_child(defer).expect("count was 1");
                self.root = Some(collapse_child(&node.prefix, eb, gc));
                retire(node, defer);
                self.len -= 1;
                removed
            }
            RootAction::Keep => {
                self.len -= 1;
                removed
            }
        }
    }

    /// Visit every leaf in ascending key order.
    pub fn for_each<F: FnMut(&L)>(&self, mut f: F) {
        fn walk<L, F: FnMut(&L)>(c: &Child<L>, f: &mut F) {
            match c {
                Child::Leaf(l) => f(l),
                Child::Inner(n) => n.for_each_child(|_, c| walk(c, f)),
            }
        }
        if let Some(c) = &self.root {
            walk(c, &mut f);
        }
    }

    /// Visit leaves whose key lies in `[start, end]` (inclusive), in key
    /// order, pruning subtrees outside the range. This is the *ordered
    /// scan* extension; the paper's own range-query experiment (Fig. 10a)
    /// calls point `search` per key instead.
    pub fn for_each_in_range<R: KeyResolver<L>, F: FnMut(&L)>(
        &self,
        r: &R,
        start: &[u8],
        end: &[u8],
        mut f: F,
    ) {
        if start > end {
            return;
        }
        let mut path: Vec<u8> = Vec::with_capacity(MAX_KEY_LEN);
        if let Some(c) = &self.root {
            walk_range(r, c, &mut path, start, end, &mut f);
        }
    }

    /// Total heap bytes of the internal-node structure (Fig. 10b DRAM
    /// accounting). Leaf handles are counted as part of the node arrays
    /// holding them.
    pub fn memory_bytes(&self) -> usize {
        let mut total = size_of::<Self>();
        if let Some(c) = &self.root {
            total += c.heap_bytes();
            if let Child::Inner(_) = c {
                total += size_of::<Node<L>>();
            }
        }
        total
    }

    /// Count of inner nodes by kind `[NODE4, NODE16, NODE48, NODE256]`.
    pub fn node_histogram(&self) -> [usize; 4] {
        fn walk<L>(c: &Child<L>, h: &mut [usize; 4]) {
            if let Child::Inner(n) = c {
                h[n.kind().index()] += 1;
                n.for_each_child(|_, c| walk(c, h));
            }
        }
        let mut h = [0; 4];
        if let Some(c) = &self.root {
            walk(c, &mut h);
        }
        h
    }

    /// Height of the tree in inner-node levels (0 for empty / single leaf).
    /// Diagnostic used by tests and the harness.
    pub fn height(&self) -> usize {
        fn walk<L>(c: &Child<L>) -> usize {
            match c {
                Child::Leaf(_) => 0,
                Child::Inner(n) => {
                    let mut max = 0;
                    n.for_each_child(|_, c| max = max.max(walk(c)));
                    max + 1
                }
            }
        }
        self.root.as_ref().map_or(0, walk)
    }

    /// Check structural invariants (every inner node has ≥ 2 children and a
    /// consistent count; leaves are reachable under their own key bytes).
    /// Test-and-debug helper; O(n).
    pub fn check_invariants<R: KeyResolver<L>>(&self, r: &R) -> Result<(), String> {
        fn walk<L, R: KeyResolver<L>>(
            r: &R,
            c: &Child<L>,
            path: &mut Vec<u8>,
            n_leaves: &mut usize,
        ) -> Result<(), String> {
            match c {
                Child::Leaf(l) => {
                    *n_leaves += 1;
                    let k = r.load_key(l);
                    if !k.as_slice().starts_with(path.as_slice()) && k.as_slice() != path.as_slice()
                    {
                        return Err(format!(
                            "leaf key {:?} does not extend its path {:?}",
                            k.as_slice(),
                            path
                        ));
                    }
                    Ok(())
                }
                Child::Inner(n) => {
                    if n.count < 2 {
                        return Err(format!("inner node with {} children", n.count));
                    }
                    let mut actual = 0;
                    let mut result = Ok(());
                    path.extend_from_slice(n.prefix.as_slice());
                    n.for_each_child(|b, c| {
                        actual += 1;
                        if result.is_ok() {
                            if b != 0 {
                                path.push(b);
                            }
                            result = walk(r, c, path, n_leaves);
                            if b != 0 {
                                path.pop();
                            }
                        }
                    });
                    path.truncate(path.len() - n.prefix.len());
                    result?;
                    if actual != n.count as usize {
                        return Err(format!(
                            "node count {} but {} live children",
                            n.count, actual
                        ));
                    }
                    Ok(())
                }
            }
        }
        let mut n_leaves = 0;
        if let Some(c) = &self.root {
            let mut path = Vec::new();
            walk(r, c, &mut path, &mut n_leaves)?;
        }
        if n_leaves != self.len {
            return Err(format!(
                "len {} but {} leaves reachable",
                self.len, n_leaves
            ));
        }
        Ok(())
    }
}

fn collapse_child<L>(parent_prefix: &InlineKey, eb: u8, gc: Child<L>) -> Child<L> {
    match gc {
        // A leaf needs no prefix: its key is stored with it.
        Child::Leaf(l) => Child::Leaf(l),
        Child::Inner(mut gn) => {
            debug_assert_ne!(eb, 0, "terminator edges lead to leaves");
            gn.prefix = concat_prefix(parent_prefix, eb, &gn.prefix);
            Child::Inner(gn)
        }
    }
}

fn insert_rec<L: Send + 'static, R: KeyResolver<L>>(
    r: &R,
    slot: &mut Child<L>,
    key: &[u8],
    depth: usize,
    leaf: L,
    defer: bool,
) -> Option<L> {
    match slot {
        Child::Leaf(existing) => {
            let ek = r.load_key(existing);
            if ek.as_slice() == key {
                return Some(std::mem::replace(existing, leaf));
            }
            // Lazy expansion: materialize the divergence point.
            let eks = ek.as_slice();
            let mut lcp = 0;
            while depth + lcp < eks.len()
                && depth + lcp < key.len()
                && eks[depth + lcp] == key[depth + lcp]
            {
                lcp += 1;
            }
            let prefix = InlineKey::from_slice(&key[depth..depth + lcp]);
            let b_old = tb(eks, depth + lcp);
            let b_new = tb(key, depth + lcp);
            debug_assert_ne!(b_old, b_new, "distinct keys must diverge");
            let old_child = std::mem::replace(slot, Child::Inner(Box::new(Node::new4(prefix))));
            let Child::Inner(n) = slot else {
                unreachable!()
            };
            n.add(b_old, old_child, defer);
            n.add(b_new, Child::Leaf(leaf), defer);
            None
        }
        Child::Inner(node) => {
            let prefix = node.prefix; // InlineKey is Copy
            let p = prefix.as_slice();
            let mut m = 0;
            while m < p.len() && depth + m < key.len() && key[depth + m] == p[m] {
                m += 1;
            }
            if m < p.len() {
                // Prefix mismatch: split the compressed path at position m.
                let e_old = p[m];
                let b_new = tb(key, depth + m);
                debug_assert_ne!(e_old, b_new);
                node.prefix = InlineKey::from_slice(&p[m + 1..]);
                let new_prefix = InlineKey::from_slice(&p[..m]);
                let old_child =
                    std::mem::replace(slot, Child::Inner(Box::new(Node::new4(new_prefix))));
                let Child::Inner(n) = slot else {
                    unreachable!()
                };
                n.add(e_old, old_child, defer);
                n.add(b_new, Child::Leaf(leaf), defer);
                None
            } else {
                let depth = depth + p.len();
                let b = tb(key, depth);
                match node.get_mut(b) {
                    Some(child) => insert_rec(r, child, key, depth + 1, leaf, defer),
                    None => {
                        node.add(b, Child::Leaf(leaf), defer);
                        None
                    }
                }
            }
        }
    }
}

fn remove_rec<L: Send + 'static, R: KeyResolver<L>>(
    r: &R,
    node: &mut Node<L>,
    key: &[u8],
    depth: usize,
    defer: bool,
) -> Option<L> {
    let p = node.prefix;
    let p = p.as_slice();
    if key.len() < depth + p.len() || &key[depth..depth + p.len()] != p {
        return None;
    }
    let depth = depth + p.len();
    let b = tb(key, depth);

    enum Found {
        MatchingLeaf,
        MismatchedLeaf,
        Inner,
    }
    let found = match node.get(b)? {
        Child::Leaf(l) => {
            if r.load_key(l).as_slice() == key {
                Found::MatchingLeaf
            } else {
                Found::MismatchedLeaf
            }
        }
        Child::Inner(_) => Found::Inner,
    };
    match found {
        Found::MismatchedLeaf => None,
        Found::MatchingLeaf => {
            let Some(Child::Leaf(l)) = node.remove(b, defer) else {
                unreachable!()
            };
            Some(l)
        }
        Found::Inner => {
            let child = node.get_mut(b).expect("checked above");
            let Child::Inner(cn) = child else {
                unreachable!()
            };
            let removed = remove_rec(r, cn, key, depth + 1, defer)?;
            if cn.count == 1 {
                // Delete-side path compression: fold the single-child node
                // into its child.
                let (eb, gc) = cn.take_only_child(defer).expect("count was 1");
                let folded = collapse_child(&cn.prefix, eb, gc);
                let unlinked = std::mem::replace(child, folded);
                retire(unlinked, defer);
            }
            Some(removed)
        }
    }
}

/// All keys prefixed by `p` are strictly greater than `end`.
pub(crate) fn prefix_gt(p: &[u8], end: &[u8]) -> bool {
    let m = p.len().min(end.len());
    if p[..m] != end[..m] {
        p[..m] > end[..m]
    } else {
        p.len() > end.len()
    }
}

/// All keys prefixed by `p` are strictly less than `start`.
pub(crate) fn prefix_lt(p: &[u8], start: &[u8]) -> bool {
    let m = p.len().min(start.len());
    p[..m] < start[..m]
}

fn walk_range<L, R: KeyResolver<L>, F: FnMut(&L)>(
    r: &R,
    c: &Child<L>,
    path: &mut Vec<u8>,
    start: &[u8],
    end: &[u8],
    f: &mut F,
) {
    match c {
        Child::Leaf(l) => {
            let k = r.load_key(l);
            let ks = k.as_slice();
            if ks >= start && ks <= end {
                f(l);
            }
        }
        Child::Inner(n) => {
            let before = path.len();
            path.extend_from_slice(n.prefix.as_slice());
            if prefix_lt(path, start) || prefix_gt(path, end) {
                path.truncate(before);
                return;
            }
            n.for_each_child(|b, c| {
                if b == 0 {
                    // Terminator edge: the leaf's key equals the current path.
                    walk_range(r, c, path, start, end, f);
                } else {
                    path.push(b);
                    if !(prefix_lt(path, start) || prefix_gt(path, end)) {
                        walk_range(r, c, path, start, end, f);
                    }
                    path.pop();
                }
            });
            path.truncate(before);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type T = Art<OwnedLeaf>;
    const R: SliceResolver = SliceResolver;

    fn ins(t: &mut T, k: &str) -> Option<OwnedLeaf> {
        t.insert(
            &R,
            k.as_bytes(),
            OwnedLeaf::new(k.as_bytes(), k.len() as u64),
        )
    }

    fn has(t: &T, k: &str) -> bool {
        t.search(&R, k.as_bytes()).is_some()
    }

    #[test]
    fn empty_tree() {
        let t = T::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert!(t.search(&R, b"x").is_none());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn single_key() {
        let mut t = T::new();
        assert!(ins(&mut t, "hello").is_none());
        assert_eq!(t.len(), 1);
        assert!(has(&t, "hello"));
        assert!(!has(&t, "hell"));
        assert!(!has(&t, "helloo"));
        assert!(!has(&t, "xello"));
    }

    #[test]
    fn empty_art_key() {
        // HART stores keys shorter than the hash prefix under the empty
        // ART key; it must coexist with non-empty keys.
        let mut t = T::new();
        t.insert(&R, b"", OwnedLeaf::new(b"", 0));
        ins(&mut t, "a");
        ins(&mut t, "ab");
        assert!(t.search(&R, b"").is_some());
        assert!(has(&t, "a"));
        assert!(has(&t, "ab"));
        assert_eq!(t.len(), 3);
        assert!(t.check_invariants(&R).is_ok());
        assert_eq!(t.remove(&R, b"").unwrap().key.as_slice(), b"");
        assert!(t.search(&R, b"").is_none());
        assert!(has(&t, "a"));
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut t = T::new();
        for k in ["a", "ab", "abc", "abcd", "b"] {
            ins(&mut t, k);
        }
        for k in ["a", "ab", "abc", "abcd", "b"] {
            assert!(has(&t, k), "missing {k}");
        }
        assert!(!has(&t, "abcde"));
        assert!(!has(&t, ""));
        assert!(t.check_invariants(&R).is_ok());
    }

    #[test]
    fn replace_returns_old() {
        let mut t = T::new();
        t.insert(&R, b"k", OwnedLeaf::new(b"k", 1));
        let old = t.insert(&R, b"k", OwnedLeaf::new(b"k", 2)).unwrap();
        assert_eq!(old.val, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(&R, b"k").unwrap().val, 2);
    }

    #[test]
    fn path_compression_split() {
        let mut t = T::new();
        ins(&mut t, "romane");
        ins(&mut t, "romanus");
        // One NODE4 with prefix "roman".
        assert_eq!(t.node_histogram(), [1, 0, 0, 0]);
        ins(&mut t, "romulus");
        // Splits the "roman" prefix at "rom".
        assert_eq!(t.node_histogram(), [2, 0, 0, 0]);
        for k in ["romane", "romanus", "romulus"] {
            assert!(has(&t, k));
        }
        assert!(t.check_invariants(&R).is_ok());
    }

    #[test]
    fn removal_collapses_paths() {
        let mut t = T::new();
        for k in ["romane", "romanus", "romulus", "rubens", "ruber"] {
            ins(&mut t, k);
        }
        assert!(t.check_invariants(&R).is_ok());
        assert!(t.remove(&R, b"romanus").is_some());
        assert!(t.remove(&R, b"romane").is_some());
        assert!(t.remove(&R, b"ruber").is_some());
        assert!(t.check_invariants(&R).is_ok());
        assert!(has(&t, "romulus"));
        assert!(has(&t, "rubens"));
        assert_eq!(t.len(), 2);
        assert!(t.remove(&R, b"romulus").is_some());
        assert!(t.remove(&R, b"rubens").is_some());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn remove_missing() {
        let mut t = T::new();
        ins(&mut t, "abc");
        assert!(t.remove(&R, b"abd").is_none());
        assert!(t.remove(&R, b"ab").is_none());
        assert!(t.remove(&R, b"abcd").is_none());
        assert!(t.remove(&R, b"").is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_keys_roundtrip() {
        let mut t = T::new();
        let keys: Vec<String> = (0..5000)
            .map(|i| format!("key{:05}", i * 7 % 5000))
            .collect();
        for k in &keys {
            assert!(ins(&mut t, k).is_none(), "duplicate {k}");
        }
        assert_eq!(t.len(), 5000);
        assert!(t.check_invariants(&R).is_ok());
        for k in &keys {
            assert!(has(&t, k), "missing {k}");
        }
        // Remove half, verify the rest.
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.remove(&R, k.as_bytes()).is_some(), "remove {k}");
            }
        }
        assert_eq!(t.len(), 2500);
        assert!(t.check_invariants(&R).is_ok());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(has(&t, k), i % 2 == 1, "post-delete {k}");
        }
    }

    #[test]
    fn ordered_iteration() {
        let mut t = T::new();
        let mut keys = vec!["pear", "apple", "banana", "app", "applesauce", "z", "a"];
        for k in &keys {
            ins(&mut t, k);
        }
        keys.sort_unstable();
        let mut seen = Vec::new();
        t.for_each(|l| seen.push(String::from_utf8(l.key.as_slice().to_vec()).unwrap()));
        assert_eq!(seen, keys);
    }

    #[test]
    fn range_scan_prunes_correctly() {
        let mut t = T::new();
        let keys: Vec<String> = (0..500).map(|i| format!("k{:04}", i)).collect();
        for k in &keys {
            ins(&mut t, k);
        }
        let mut seen = Vec::new();
        t.for_each_in_range(&R, b"k0100", b"k0199", |l| {
            seen.push(String::from_utf8(l.key.as_slice().to_vec()).unwrap())
        });
        let expected: Vec<String> = (100..200).map(|i| format!("k{:04}", i)).collect();
        assert_eq!(seen, expected);

        // Empty range.
        let mut n = 0;
        t.for_each_in_range(&R, b"x", b"y", |_| n += 1);
        assert_eq!(n, 0);

        // Inverted range.
        t.for_each_in_range(&R, b"k0199", b"k0100", |_| n += 1);
        assert_eq!(n, 0);

        // Full range.
        t.for_each_in_range(&R, b"", b"zzzzzz", |_| n += 1);
        assert_eq!(n, 500);
    }

    #[test]
    fn range_includes_boundary_prefix_keys() {
        let mut t = T::new();
        for k in ["ab", "abc", "abd", "ac"] {
            ins(&mut t, k);
        }
        let mut seen = Vec::new();
        t.for_each_in_range(&R, b"ab", b"abc", |l| {
            seen.push(String::from_utf8(l.key.as_slice().to_vec()).unwrap())
        });
        assert_eq!(seen, vec!["ab", "abc"]);
    }

    #[test]
    fn node_growth_to_256() {
        let mut t = T::new();
        // 200 distinct first bytes forces the root to NODE256.
        for b in 0u8..200 {
            let key = [b.max(1), b'x']; // avoid NUL first byte
            t.insert(&R, &key, OwnedLeaf::new(&key, b as u64));
        }
        let h = t.node_histogram();
        assert_eq!(h[3], 1, "root should be NODE256: {h:?}");
        for b in 0u8..200 {
            let key = [b.max(1), b'x'];
            assert!(t.search(&R, &key).is_some());
        }
    }

    #[test]
    fn memory_grows_and_shrinks() {
        let mut t = T::new();
        let empty = t.memory_bytes();
        for i in 0..1000 {
            let k = format!("key{i:04}");
            ins(&mut t, &k);
        }
        let full = t.memory_bytes();
        assert!(full > empty);
        for i in 0..1000 {
            let k = format!("key{i:04}");
            t.remove(&R, k.as_bytes());
        }
        assert_eq!(t.memory_bytes(), empty);
    }

    #[test]
    fn height_is_bounded_by_key_length() {
        let mut t = T::new();
        for i in 0..10_000 {
            let k = format!("{:06}", i);
            ins(&mut t, &k);
        }
        // 6-byte keys + terminator: height can never exceed 7.
        assert!(t.height() <= 7, "height {}", t.height());
    }

    #[test]
    fn clear_resets() {
        let mut t = T::new();
        ins(&mut t, "a");
        ins(&mut t, "b");
        t.clear();
        assert!(t.is_empty());
        assert!(!has(&t, "a"));
        ins(&mut t, "c");
        assert!(has(&t, "c"));
    }

    #[test]
    fn prefix_helpers() {
        assert!(prefix_gt(b"abd", b"abc"));
        assert!(!prefix_gt(b"abc", b"abc"));
        assert!(prefix_gt(b"abcd", b"abc")); // longer, equal prefix: all > end
        assert!(!prefix_gt(b"ab", b"abc")); // "ab" itself ≤ "abc"
        assert!(prefix_lt(b"aa", b"ab"));
        assert!(!prefix_lt(b"ab", b"ab"));
        assert!(!prefix_lt(b"abc", b"ab"));
        assert!(!prefix_lt(b"ab", b"abc")); // recurse, don't skip
    }
}
