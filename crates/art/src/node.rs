//! The four adaptive inner-node types of ART.
//!
//! Each node stores a compressed path prefix (complete — max key length is
//! 24 bytes, so prefixes always fit inline) and a set of `(byte, child)`
//! edges in one of four representations chosen by fan-out:
//!
//! | kind    | capacity | representation                                  |
//! |---------|----------|-------------------------------------------------|
//! | NODE4   | 4        | sorted parallel `keys[4]` / `children[4]` arrays |
//! | NODE16  | 16       | sorted parallel arrays, binary/linear search     |
//! | NODE48  | 48       | 256-entry byte index into a 48-slot child array  |
//! | NODE256 | 256      | direct 256-slot child array                      |
//!
//! Nodes grow on overflow and shrink on underflow; a NODE4 that drops to a
//! single child is collapsed into that child by the tree layer (path
//! compression on delete).

use hart_kv::InlineKey;
use std::mem::size_of;

/// Which adaptive representation a node currently uses. Exposed for the
/// memory-consumption experiment (Fig. 10b) and for white-box tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Node4,
    Node16,
    Node48,
    Node256,
}

impl NodeKind {
    /// Index 0..4, for histograms.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            NodeKind::Node4 => 0,
            NodeKind::Node16 => 1,
            NodeKind::Node48 => 2,
            NodeKind::Node256 => 3,
        }
    }
}

/// An edge target: either an external leaf handle or a boxed inner node.
pub(crate) enum Child<L> {
    Leaf(L),
    Inner(Box<Node<L>>),
}

impl<L> Child<L> {
    /// Heap bytes attributable to this child (recursive), for Fig. 10b.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Child::Leaf(_) => 0,
            Child::Inner(n) => n.heap_bytes() + size_of::<Node<L>>(),
        }
    }
}

pub(crate) const NO_SLOT: u8 = 0xFF;

/// Free `x` now, or hand it to the epoch reclaimer when `defer` is set.
///
/// Every heap block an optimistic reader could still be traversing (inner
/// nodes unlinked by collapse, representation boxes replaced by grow/shrink)
/// must pass through here: with `defer = true` the block stays mapped until
/// every reader pinned before the unlink has finished, which is what makes
/// the lock-free read path's validate-then-dereference step sound.
pub(crate) fn retire<T: Send + 'static>(x: T, defer: bool) {
    if defer {
        hart_ebr::defer_drop(x);
    } else {
        drop(x);
    }
}

/// Inner representation. Variants are boxed so a [`Node`] is small no matter
/// which representation it currently uses.
pub(crate) enum Repr<L> {
    N4(Box<N4<L>>),
    N16(Box<N16<L>>),
    N48(Box<N48<L>>),
    N256(Box<N256<L>>),
}

pub(crate) struct N4<L> {
    pub keys: [u8; 4],
    pub children: [Option<Child<L>>; 4],
}

pub(crate) struct N16<L> {
    pub keys: [u8; 16],
    pub children: [Option<Child<L>>; 16],
}

pub(crate) struct N48<L> {
    /// Maps edge byte -> slot in `children`; `NO_SLOT` = absent.
    pub index: [u8; 256],
    pub children: [Option<Child<L>>; 48],
}

pub(crate) struct N256<L> {
    pub children: Box<[Option<Child<L>>; 256]>,
}

/// An inner node: compressed path prefix + adaptive edge set.
pub(crate) struct Node<L> {
    /// Compressed path consumed before this node's edge byte.
    pub prefix: InlineKey,
    /// Number of live edges.
    pub count: u16,
    pub repr: Repr<L>,
}

fn empty_children<L, const N: usize>() -> [Option<Child<L>>; N] {
    std::array::from_fn(|_| None)
}

impl<L> Node<L> {
    /// New empty NODE4 with the given prefix.
    pub fn new4(prefix: InlineKey) -> Node<L> {
        Node {
            prefix,
            count: 0,
            repr: Repr::N4(Box::new(N4 {
                keys: [0; 4],
                children: empty_children(),
            })),
        }
    }

    /// Current representation kind.
    pub fn kind(&self) -> NodeKind {
        match &self.repr {
            Repr::N4(_) => NodeKind::Node4,
            Repr::N16(_) => NodeKind::Node16,
            Repr::N48(_) => NodeKind::Node48,
            Repr::N256(_) => NodeKind::Node256,
        }
    }

    /// Heap bytes of this node's representation plus all descendants
    /// (excluding the `Node` header itself, which the caller sizes).
    pub fn heap_bytes(&self) -> usize {
        let own = match &self.repr {
            Repr::N4(_) => size_of::<N4<L>>(),
            Repr::N16(_) => size_of::<N16<L>>(),
            Repr::N48(_) => size_of::<N48<L>>(),
            Repr::N256(_) => size_of::<N256<L>>() + size_of::<[Option<Child<L>>; 256]>(),
        };
        let mut total = own;
        self.for_each_child(|_, c| total += c.heap_bytes());
        total
    }

    /// Look up the child for edge byte `b`.
    pub fn get(&self, b: u8) -> Option<&Child<L>> {
        match &self.repr {
            Repr::N4(n) => {
                let c = self.count as usize;
                n.keys[..c]
                    .iter()
                    .position(|&k| k == b)
                    .and_then(|i| n.children[i].as_ref())
            }
            Repr::N16(n) => crate::simd::find_key16(&n.keys, self.count as usize, b)
                .and_then(|i| n.children[i].as_ref()),
            Repr::N48(n) => {
                let slot = n.index[b as usize];
                if slot == NO_SLOT {
                    None
                } else {
                    n.children[slot as usize].as_ref()
                }
            }
            Repr::N256(n) => n.children[b as usize].as_ref(),
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, b: u8) -> Option<&mut Child<L>> {
        match &mut self.repr {
            Repr::N4(n) => {
                let c = self.count as usize;
                match n.keys[..c].iter().position(|&k| k == b) {
                    Some(i) => n.children[i].as_mut(),
                    None => None,
                }
            }
            Repr::N16(n) => match crate::simd::find_key16(&n.keys, self.count as usize, b) {
                Some(i) => n.children[i].as_mut(),
                None => None,
            },
            Repr::N48(n) => {
                let slot = n.index[b as usize];
                if slot == NO_SLOT {
                    None
                } else {
                    n.children[slot as usize].as_mut()
                }
            }
            Repr::N256(n) => n.children[b as usize].as_mut(),
        }
    }

    /// Insert edge `b -> child`. Grows the representation when full; `defer`
    /// routes any replaced representation box through the epoch reclaimer.
    ///
    /// # Panics
    /// Panics (debug) if `b` is already present — callers route duplicates
    /// through `get_mut`.
    pub fn add(&mut self, b: u8, child: Child<L>, defer: bool)
    where
        L: Send + 'static,
    {
        debug_assert!(self.get(b).is_none(), "duplicate edge byte {b}");
        if self.is_full() {
            self.grow(defer);
        }
        let count = self.count as usize;
        match &mut self.repr {
            Repr::N4(n) => {
                // Keep keys sorted for ordered traversal.
                let pos = n.keys[..count].iter().position(|&k| k > b).unwrap_or(count);
                for i in (pos..count).rev() {
                    n.keys[i + 1] = n.keys[i];
                    n.children[i + 1] = n.children[i].take();
                }
                n.keys[pos] = b;
                n.children[pos] = Some(child);
            }
            Repr::N16(n) => {
                let pos = n.keys[..count].iter().position(|&k| k > b).unwrap_or(count);
                for i in (pos..count).rev() {
                    n.keys[i + 1] = n.keys[i];
                    n.children[i + 1] = n.children[i].take();
                }
                n.keys[pos] = b;
                n.children[pos] = Some(child);
            }
            Repr::N48(n) => {
                let slot = n
                    .children
                    .iter()
                    .position(|c| c.is_none())
                    .expect("N48 has room");
                n.index[b as usize] = slot as u8;
                n.children[slot] = Some(child);
            }
            Repr::N256(n) => {
                n.children[b as usize] = Some(child);
            }
        }
        self.count += 1;
    }

    /// Remove the edge for byte `b`, returning its child. Shrinks the
    /// representation on underflow (with hysteresis so add/remove at a
    /// boundary does not thrash); `defer` routes any replaced representation
    /// box through the epoch reclaimer.
    pub fn remove(&mut self, b: u8, defer: bool) -> Option<Child<L>>
    where
        L: Send + 'static,
    {
        let count = self.count as usize;
        let removed = match &mut self.repr {
            Repr::N4(n) => {
                let pos = n.keys[..count].iter().position(|&k| k == b)?;
                let child = n.children[pos].take();
                for i in pos..count - 1 {
                    n.keys[i] = n.keys[i + 1];
                    n.children[i] = n.children[i + 1].take();
                }
                child
            }
            Repr::N16(n) => {
                let pos = n.keys[..count].iter().position(|&k| k == b)?;
                let child = n.children[pos].take();
                for i in pos..count - 1 {
                    n.keys[i] = n.keys[i + 1];
                    n.children[i] = n.children[i + 1].take();
                }
                child
            }
            Repr::N48(n) => {
                let slot = n.index[b as usize];
                if slot == NO_SLOT {
                    return None;
                }
                n.index[b as usize] = NO_SLOT;
                n.children[slot as usize].take()
            }
            Repr::N256(n) => n.children[b as usize].take(),
        };
        let removed = removed?;
        self.count -= 1;
        self.maybe_shrink(defer);
        Some(removed)
    }

    /// If exactly one edge remains, take it out (with its byte) so the tree
    /// layer can collapse this node into the child (delete-side path
    /// compression).
    pub fn take_only_child(&mut self, defer: bool) -> Option<(u8, Child<L>)>
    where
        L: Send + 'static,
    {
        if self.count != 1 {
            return None;
        }
        let b = self.first_byte().expect("count==1 implies an edge");
        let child = self.remove(b, defer).expect("edge must exist");
        Some((b, child))
    }

    /// Smallest edge byte, if any.
    pub fn first_byte(&self) -> Option<u8> {
        match &self.repr {
            Repr::N4(n) => (self.count > 0).then(|| n.keys[0]),
            Repr::N16(n) => (self.count > 0).then(|| n.keys[0]),
            Repr::N48(n) => crate::simd::next_edge48(&n.index, 0),
            Repr::N256(n) => (0..=255u8).find(|&b| n.children[b as usize].is_some()),
        }
    }

    /// Visit children in ascending edge-byte order.
    pub fn for_each_child<'a, F: FnMut(u8, &'a Child<L>)>(&'a self, mut f: F) {
        match &self.repr {
            Repr::N4(n) => {
                for i in 0..self.count as usize {
                    f(n.keys[i], n.children[i].as_ref().expect("live slot"));
                }
            }
            Repr::N16(n) => {
                for i in 0..self.count as usize {
                    f(n.keys[i], n.children[i].as_ref().expect("live slot"));
                }
            }
            Repr::N48(n) => {
                let mut from = 0usize;
                while let Some(b) = crate::simd::next_edge48(&n.index, from) {
                    let slot = n.index[b as usize];
                    f(b, n.children[slot as usize].as_ref().expect("live slot"));
                    from = b as usize + 1;
                }
            }
            Repr::N256(n) => {
                for b in 0..=255u8 {
                    if let Some(c) = n.children[b as usize].as_ref() {
                        f(b, c);
                    }
                }
            }
        }
    }

    fn is_full(&self) -> bool {
        let cap = match &self.repr {
            Repr::N4(_) => 4,
            Repr::N16(_) => 16,
            Repr::N48(_) => 48,
            Repr::N256(_) => 256,
        };
        self.count as usize == cap
    }

    fn grow(&mut self, defer: bool)
    where
        L: Send + 'static,
    {
        let count = self.count as usize;
        // The placeholder N4 below is visible to optimistic readers only
        // inside a writer's version-odd window, where validation always
        // fails before any dereference — so dropping it immediately (via the
        // final assignment to `self.repr`) is safe even in deferred mode.
        // The *old* representation box, by contrast, was part of a committed
        // tree state and must be retired.
        self.repr = match std::mem::replace(
            &mut self.repr,
            Repr::N4(Box::new(N4 {
                keys: [0; 4],
                children: empty_children(),
            })),
        ) {
            Repr::N4(mut old) => {
                let mut n = Box::new(N16 {
                    keys: [0; 16],
                    children: empty_children(),
                });
                for i in 0..count {
                    n.keys[i] = old.keys[i];
                    n.children[i] = old.children[i].take();
                }
                retire(old, defer);
                Repr::N16(n)
            }
            Repr::N16(mut old) => {
                let mut n = Box::new(N48 {
                    index: [NO_SLOT; 256],
                    children: empty_children(),
                });
                for i in 0..count {
                    n.index[old.keys[i] as usize] = i as u8;
                    n.children[i] = old.children[i].take();
                }
                retire(old, defer);
                Repr::N48(n)
            }
            Repr::N48(mut old) => {
                let mut n = N256 {
                    children: Box::new(empty_children()),
                };
                for b in 0..256usize {
                    let slot = old.index[b];
                    if slot != NO_SLOT {
                        n.children[b] = old.children[slot as usize].take();
                    }
                }
                retire(old, defer);
                Repr::N256(Box::new(n))
            }
            Repr::N256(_) => unreachable!("NODE256 cannot grow"),
        };
    }

    fn maybe_shrink(&mut self, defer: bool)
    where
        L: Send + 'static,
    {
        let count = self.count as usize;
        let shrink = match &self.repr {
            Repr::N4(_) => false,
            Repr::N16(_) => count <= 3,
            Repr::N48(_) => count <= 12,
            Repr::N256(_) => count <= 36,
        };
        if !shrink {
            return;
        }
        // Placeholder/retire discipline as in `grow`.
        self.repr = match std::mem::replace(
            &mut self.repr,
            Repr::N4(Box::new(N4 {
                keys: [0; 4],
                children: empty_children(),
            })),
        ) {
            Repr::N16(mut old) => {
                let mut n = Box::new(N4 {
                    keys: [0; 4],
                    children: empty_children(),
                });
                for i in 0..count {
                    n.keys[i] = old.keys[i];
                    n.children[i] = old.children[i].take();
                }
                retire(old, defer);
                Repr::N4(n)
            }
            Repr::N48(mut old) => {
                let mut n = Box::new(N16 {
                    keys: [0; 16],
                    children: empty_children(),
                });
                let mut j = 0;
                for b in 0..256usize {
                    let slot = old.index[b];
                    if slot != NO_SLOT {
                        n.keys[j] = b as u8;
                        n.children[j] = old.children[slot as usize].take();
                        j += 1;
                    }
                }
                retire(old, defer);
                Repr::N16(n)
            }
            Repr::N256(mut old) => {
                let mut n = Box::new(N48 {
                    index: [NO_SLOT; 256],
                    children: empty_children(),
                });
                let mut j = 0;
                for b in 0..256usize {
                    if let Some(c) = old.children[b].take() {
                        n.index[b] = j as u8;
                        n.children[j as usize] = Some(c);
                        j += 1;
                    }
                }
                retire(old, defer);
                Repr::N48(n)
            }
            Repr::N4(n) => Repr::N4(n),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: u32) -> Child<u32> {
        Child::Leaf(v)
    }

    fn leaf_val(c: &Child<u32>) -> u32 {
        match c {
            Child::Leaf(v) => *v,
            Child::Inner(_) => panic!("expected leaf"),
        }
    }

    #[test]
    fn add_get_remove_node4() {
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        n.add(b'c', leaf(3), false);
        n.add(b'a', leaf(1), false);
        n.add(b'b', leaf(2), false);
        assert_eq!(n.kind(), NodeKind::Node4);
        assert_eq!(leaf_val(n.get(b'a').unwrap()), 1);
        assert_eq!(leaf_val(n.get(b'b').unwrap()), 2);
        assert!(n.get(b'z').is_none());
        assert_eq!(n.first_byte(), Some(b'a'));
        let r = n.remove(b'b', false).unwrap();
        assert_eq!(leaf_val(&r), 2);
        assert!(n.get(b'b').is_none());
        assert_eq!(n.count, 2);
    }

    #[test]
    fn grows_through_all_kinds() {
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        for b in 0..=255u8 {
            n.add(b, leaf(b as u32), false);
            let expected = match n.count {
                0..=4 => NodeKind::Node4,
                5..=16 => NodeKind::Node16,
                17..=48 => NodeKind::Node48,
                _ => NodeKind::Node256,
            };
            assert_eq!(n.kind(), expected, "at count {}", n.count);
        }
        for b in 0..=255u8 {
            assert_eq!(leaf_val(n.get(b).unwrap()), b as u32);
        }
    }

    #[test]
    fn shrinks_back_down() {
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        for b in 0..=255u8 {
            n.add(b, leaf(b as u32), false);
        }
        for b in (3..=255u8).rev() {
            assert_eq!(leaf_val(&n.remove(b, false).unwrap()), b as u32);
        }
        // Shrink thresholds have hysteresis: NODE4 is reached at ≤3 children.
        assert_eq!(n.kind(), NodeKind::Node4);
        for b in 0..3u8 {
            assert_eq!(leaf_val(n.get(b).unwrap()), b as u32);
        }
    }

    #[test]
    fn ordered_traversal_all_kinds() {
        for size in [3usize, 10, 30, 100] {
            let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
            // Insert in a scrambled order.
            let mut bytes: Vec<u8> = (0..size as u32).map(|i| (i * 37 % 251) as u8).collect();
            bytes.sort_unstable();
            bytes.dedup();
            let mut scrambled = bytes.clone();
            scrambled.reverse();
            for &b in &scrambled {
                n.add(b, leaf(b as u32), false);
            }
            let mut seen = Vec::new();
            n.for_each_child(|b, _| seen.push(b));
            assert_eq!(seen, bytes, "size {size}");
        }
    }

    #[test]
    fn take_only_child() {
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        n.add(b'x', leaf(9), false);
        let (b, c) = n.take_only_child(false).unwrap();
        assert_eq!(b, b'x');
        assert_eq!(leaf_val(&c), 9);
        assert_eq!(n.count, 0);

        let mut two: Node<u32> = Node::new4(InlineKey::EMPTY);
        two.add(b'a', leaf(1), false);
        two.add(b'b', leaf(2), false);
        assert!(two.take_only_child(false).is_none());
    }

    #[test]
    fn remove_missing_is_none() {
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        n.add(b'a', leaf(1), false);
        assert!(n.remove(b'b', false).is_none());
        assert_eq!(n.count, 1);
    }

    #[test]
    fn heap_bytes_grows_with_kind() {
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        n.add(0, leaf(0), false);
        let small = n.heap_bytes();
        for b in 1..=200u8 {
            n.add(b, leaf(b as u32), false);
        }
        assert!(
            n.heap_bytes() > small * 4,
            "NODE256 must report much more heap"
        );
    }

    #[test]
    fn zero_byte_edge_sorts_first() {
        // The terminator edge (0) must come first in ordered traversal so
        // "ab" iterates before "abc".
        let mut n: Node<u32> = Node::new4(InlineKey::EMPTY);
        n.add(b'a', leaf(1), false);
        n.add(0, leaf(0), false);
        let mut seen = Vec::new();
        n.for_each_child(|b, _| seen.push(b));
        assert_eq!(seen, vec![0, b'a']);
    }
}
