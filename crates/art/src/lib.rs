//! A volatile (DRAM-resident) Adaptive Radix Tree.
//!
//! This is the internal-node layer HART keeps in DRAM (§III-A.2 "HART keeps
//! the leaf nodes on PM while leaves all internal nodes and the hash table on
//! DRAM") and the algorithmic base of the radix-tree baselines. It follows
//! Leis et al., "The Adaptive Radix Tree: ARTful Indexing for Main-Memory
//! Databases" (ICDE 2013):
//!
//! * four adaptive node types — NODE4, NODE16, NODE48, NODE256 — grown and
//!   shrunk as fan-out changes;
//! * **path compression**: single-child chains are collapsed into a per-node
//!   prefix (complete prefixes — keys are ≤ 24 bytes so they always fit
//!   inline, no optimistic re-check needed);
//! * **lazy expansion**: a subtree containing one key is just a leaf; inner
//!   nodes materialize only when two keys diverge.
//!
//! # Leaves are external
//!
//! The tree is generic over the leaf handle `L`. HART stores persistent
//! pointers whose key bytes live in emulated persistent memory; unit tests
//! store owned keys. The tree itself never interprets `L` — whenever it
//! needs a leaf's key (for lazy-expansion splits and final comparisons) it
//! asks the caller-supplied [`KeyResolver`], so PM read latency is charged
//! on exactly the accesses a real HART would make.
//!
//! # Terminated keys
//!
//! Like the libart implementation the paper builds on, keys are logically
//! suffixed with a `0` terminator so a key that is a strict prefix of
//! another key terminates in its own leaf (child slot 0 of the node where
//! the longer key continues). Keys must therefore contain no interior NUL
//! bytes — enforced by `hart_kv::Key`. The *empty* ART key (a full key
//! shorter than HART's hash-prefix length) is handled naturally: its
//! terminated view is the single byte `0`.

//! # Example
//!
//! ```
//! use hart_art::{Art, OwnedLeaf, SliceResolver};
//!
//! let mut art = Art::new();
//! let r = SliceResolver;
//! art.insert(&r, b"romane", OwnedLeaf::new(b"romane", 1));
//! art.insert(&r, b"romanus", OwnedLeaf::new(b"romanus", 2));
//! art.insert(&r, b"romulus", OwnedLeaf::new(b"romulus", 3));
//!
//! assert_eq!(art.search(&r, b"romanus").unwrap().val, 2);
//! assert_eq!(art.search(&r, b"roman"), None);
//!
//! // In-order traversal is sorted.
//! let mut keys = Vec::new();
//! art.for_each(|l| keys.push(l.key.as_slice().to_vec()));
//! assert_eq!(keys, vec![b"romane".to_vec(), b"romanus".to_vec(), b"romulus".to_vec()]);
//! ```

mod iter;
mod node;
mod optimistic;
pub mod simd;
mod tree;

pub use iter::ArtIter;
pub use node::NodeKind;
pub use optimistic::{range_collect_raw, search_raw, RawRead};
pub use tree::{Art, KeyResolver, OwnedLeaf, SliceResolver};
