//! Version-validated traversal of an [`Art`] without holding its lock.
//!
//! HART's pessimistic read path takes a shard's `RwLock` in shared mode and
//! walks the tree with ordinary borrows. The optimistic path instead walks
//! the *raw* tree memory while writers may be mutating it, and relies on a
//! caller-supplied `validate` callback (a seqlock version check in HART) to
//! decide whether anything it read could have been torn.
//!
//! # Protocol
//!
//! Every step follows the same discipline:
//!
//! 1. **Copy, don't borrow.** Bytes are pulled out of the shared structure
//!    with `ptr::read_volatile` into a local [`MaybeUninit`] — never through
//!    a reference, so no aliasing assumption is made about memory a writer
//!    could be rewriting, and the copy is never dropped (it may bitwise-
//!    duplicate a `Box`).
//! 2. **Validate before interpreting.** A torn copy of an enum (`Repr`,
//!    `Option<Child>`) may hold an invalid tag or a mismatched tag/payload
//!    pair, so the copy is only `assume_init`-matched after `validate()`
//!    confirms no writer committed (or is active) since the attempt began.
//!    A failed check aborts the attempt with [`RawRead::Retry`].
//! 3. **Dereference only validated pointers, only into reclaimer-protected
//!    memory.** Once validated, a pointer is the committed value, but the
//!    writer may free its target *after* validation — which is why the tree
//!    must run with deferred reclamation ([`Art::set_deferred_reclaim`]) and
//!    the caller must hold an [`hart_ebr`] pin for the whole attempt:
//!    retired nodes stay mapped until the pin is released.
//!
//! Values derived from unvalidated plain integers (slot indices, counts)
//! are bounds-clamped before use, so the worst a torn read can do is route
//! the walk to the wrong committed slot — which validation then rejects.
//!
//! If every validation passes, every byte the walk acted on was the
//! committed tree state for one version, so the result is exactly what the
//! locked path would have returned at that version.

use crate::node::{Child, Node, Repr};
use crate::tree::{prefix_gt, prefix_lt, tb, Art, KeyResolver};
use hart_kv::MAX_KEY_LEN;
use std::mem::MaybeUninit;
use std::ptr::{self, addr_of};

/// Outcome of one optimistic attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RawRead<T> {
    /// The key was present with this leaf handle at a committed version.
    Found(T),
    /// The key was absent at a committed version.
    NotFound,
    /// A writer interfered; the caller must retry or fall back to locking.
    Retry,
}

/// Volatile bitwise copy that never drops (and so never double-frees a
/// bitwise-duplicated `Box`).
///
/// # Safety
/// `p` must be valid for reads of `size_of::<T>()` bytes (alignment per
/// `T`). The *contents* may be torn; the caller must validate before
/// calling `assume_init`-style accessors on enum-bearing `T`.
unsafe fn vol_copy<T>(p: *const T) -> MaybeUninit<T> {
    ptr::read_volatile(p as *const MaybeUninit<T>)
}

/// Locate the child slot for edge byte `b` in the (validated) node copy
/// `node`, returning a raw pointer into the node's representation arrays.
///
/// Returns `Err(())` when the edge is absent. The returned pointer is
/// in-bounds by construction (indices are clamped), but the slot contents
/// still need the copy-validate treatment by the caller.
///
/// # Safety
/// `node` must be a validated copy of a committed node whose representation
/// boxes are still mapped (EBR pin).
unsafe fn child_slot<L>(node: &Node<L>, b: u8) -> Result<*const Option<Child<L>>, ()> {
    match &node.repr {
        Repr::N4(bx) => {
            let n = &**bx;
            let keys = vol_copy(addr_of!(n.keys)).assume_init(); // plain bytes
            let c = (node.count as usize).min(4);
            match keys[..c].iter().position(|&k| k == b) {
                Some(i) => Ok(addr_of!(n.children[i])),
                None => Err(()),
            }
        }
        Repr::N16(bx) => {
            let n = &**bx;
            // SIMD search runs on the local volatile copy, never the shared
            // array; a torn copy at worst misroutes to a committed slot,
            // which the caller's validate rejects.
            let keys = vol_copy(addr_of!(n.keys)).assume_init();
            match crate::simd::find_key16(&keys, node.count as usize, b) {
                Some(i) => Ok(addr_of!(n.children[i])),
                None => Err(()),
            }
        }
        Repr::N48(bx) => {
            let n = &**bx;
            let slot = ptr::read_volatile(addr_of!(n.index[b as usize]));
            if slot as usize >= 48 {
                // NO_SLOT, or a torn index a later validate will reject.
                Err(())
            } else {
                Ok(addr_of!(n.children[slot as usize]))
            }
        }
        Repr::N256(bx) => {
            // `children` is a Box set at construction and never reassigned
            // while the node is linked, so reading it non-volatilely through
            // the validated node copy is fine.
            Ok(addr_of!(bx.children[b as usize]))
        }
    }
}

/// Lock-free point lookup against the tree behind `art`.
///
/// Mirrors [`Art::search`], but instead of borrowing it copies and
/// validates (see module docs). `validate` must return `true` iff the
/// caller's version observation is still current — in HART, "the shard
/// version I read before calling was even and has not changed".
///
/// # Safety
/// - `art` must point to a live `Art<L>` for the whole call (the caller
///   typically reads it out of a lock it does *not* hold, so liveness must
///   come from an [`hart_ebr`] pin held across the call).
/// - The tree must have been running with deferred reclamation since before
///   the caller's pin was taken.
/// - `r.load_key` must tolerate concurrently-retired leaf handles (HART's
///   PM pool stays mapped, so reads return stale bytes, never fault).
pub unsafe fn search_raw<L, R, V>(art: *const Art<L>, r: &R, key: &[u8], validate: &V) -> RawRead<L>
where
    L: Copy,
    R: KeyResolver<L>,
    V: Fn() -> bool,
{
    let root_mu = vol_copy(addr_of!((*art).root));
    if !validate() {
        return RawRead::Retry;
    }
    let mut cur: MaybeUninit<Child<L>> = match &*root_mu.as_ptr() {
        None => return RawRead::NotFound,
        Some(c) => ptr::read(c as *const Child<L> as *const MaybeUninit<Child<L>>),
    };
    let mut depth = 0usize;
    // A committed tree consumes ≥ 1 key byte per inner level, so any walk
    // longer than the terminated max key length means we chased torn data.
    for _ in 0..=MAX_KEY_LEN + 2 {
        match &*cur.as_ptr() {
            Child::Leaf(l) => {
                let leaf: L = *l;
                let matches = r.load_key(&leaf).as_slice() == key;
                // Final check covers the PM key read: if the version still
                // holds, the leaf was committed for this key the whole time.
                if !validate() {
                    return RawRead::Retry;
                }
                return if matches {
                    RawRead::Found(leaf)
                } else {
                    RawRead::NotFound
                };
            }
            Child::Inner(bx) => {
                let node_ptr: *const Node<L> = &**bx;
                let node_mu = vol_copy(node_ptr);
                if !validate() {
                    return RawRead::Retry;
                }
                let node = &*node_mu.as_ptr();
                let p = node.prefix.as_slice();
                if key.len() < depth + p.len() || &key[depth..depth + p.len()] != p {
                    return RawRead::NotFound;
                }
                depth += p.len();
                let b = tb(key, depth);
                depth += 1;
                let slot = match child_slot(node, b) {
                    Ok(s) => s,
                    Err(()) => {
                        // Absent edge — but the keys/index bytes that said
                        // so were read unvalidated.
                        return if validate() {
                            RawRead::NotFound
                        } else {
                            RawRead::Retry
                        };
                    }
                };
                let slot_mu = vol_copy(slot);
                if !validate() {
                    return RawRead::Retry;
                }
                match &*slot_mu.as_ptr() {
                    None => return RawRead::NotFound,
                    Some(c) => {
                        cur = ptr::read(c as *const Child<L> as *const MaybeUninit<Child<L>>);
                    }
                }
            }
        }
    }
    RawRead::Retry
}

/// Lock-free range scan: collects every leaf whose key lies in
/// `[start, end]` into `out`, in ascending key order.
///
/// Returns `true` on success; `false` means a writer interfered — `out` is
/// truncated back to its original length and the caller must retry or fall
/// back to the locked [`Art::for_each_in_range`].
///
/// # Safety
/// Same contract as [`search_raw`].
pub unsafe fn range_collect_raw<L, R, V>(
    art: *const Art<L>,
    r: &R,
    start: &[u8],
    end: &[u8],
    validate: &V,
    out: &mut Vec<L>,
) -> bool
where
    L: Copy,
    R: KeyResolver<L>,
    V: Fn() -> bool,
{
    let keep = out.len();
    if start > end {
        return true;
    }
    let root_mu = vol_copy(addr_of!((*art).root));
    if !validate() {
        return false;
    }
    let ok = match &*root_mu.as_ptr() {
        None => true,
        Some(c) => {
            let cur = ptr::read(c as *const Child<L> as *const MaybeUninit<Child<L>>);
            let mut path: Vec<u8> = Vec::with_capacity(MAX_KEY_LEN);
            walk_raw(&cur, r, &mut path, start, end, validate, out, 0)
        }
    };
    if !ok {
        out.truncate(keep);
    }
    ok
}

/// Recursive worker for [`range_collect_raw`]. `cur` is a validated copy of
/// a committed child. Returns `false` on any validation failure.
#[allow(clippy::too_many_arguments)]
unsafe fn walk_raw<L, R, V>(
    cur: &MaybeUninit<Child<L>>,
    r: &R,
    path: &mut Vec<u8>,
    start: &[u8],
    end: &[u8],
    validate: &V,
    out: &mut Vec<L>,
    level: usize,
) -> bool
where
    L: Copy,
    R: KeyResolver<L>,
    V: Fn() -> bool,
{
    if level > MAX_KEY_LEN + 2 {
        return false; // torn data led us in circles
    }
    match &*cur.as_ptr() {
        Child::Leaf(l) => {
            let leaf: L = *l;
            let k = r.load_key(&leaf);
            let ks = k.as_slice();
            let in_range = ks >= start && ks <= end;
            if !validate() {
                return false;
            }
            if in_range {
                out.push(leaf);
            }
            true
        }
        Child::Inner(bx) => {
            let node_ptr: *const Node<L> = &**bx;
            let node_mu = vol_copy(node_ptr);
            if !validate() {
                return false;
            }
            let node = &*node_mu.as_ptr();
            let before = path.len();
            path.extend_from_slice(node.prefix.as_slice());
            if prefix_lt(path, start) || prefix_gt(path, end) {
                path.truncate(before);
                return true;
            }
            let ok = each_edge_raw(node, validate, |b, slot_mu| {
                if b == 0 {
                    walk_raw(slot_mu, r, path, start, end, validate, out, level + 1)
                } else {
                    path.push(b);
                    let ok = if prefix_lt(path, start) || prefix_gt(path, end) {
                        true
                    } else {
                        walk_raw(slot_mu, r, path, start, end, validate, out, level + 1)
                    };
                    path.pop();
                    ok
                }
            });
            path.truncate(before);
            ok
        }
    }
}

/// Visit the live edges of a validated node copy in ascending byte order,
/// copy-validating each child slot before handing it to `f`. Stops early
/// (returning `false`) on validation failure or when `f` does.
unsafe fn each_edge_raw<L, V, F>(node: &Node<L>, validate: &V, mut f: F) -> bool
where
    V: Fn() -> bool,
    F: FnMut(u8, &MaybeUninit<Child<L>>) -> bool,
{
    // Emit one validated (byte, slot-pointer) pair at a time.
    let mut visit = |b: u8, slot: *const Option<Child<L>>| -> Option<bool> {
        let slot_mu = vol_copy(slot);
        if !validate() {
            return Some(false);
        }
        match &*slot_mu.as_ptr() {
            None => None, // empty slot: skip (validated, so genuinely absent)
            Some(c) => {
                let child = ptr::read(c as *const Child<L> as *const MaybeUninit<Child<L>>);
                Some(f(b, &child))
            }
        }
    };
    match &node.repr {
        Repr::N4(bx) => {
            let n = &**bx;
            let keys = vol_copy(addr_of!(n.keys)).assume_init();
            let c = (node.count as usize).min(4);
            for (i, &k) in keys.iter().enumerate().take(c) {
                if let Some(ok) = visit(k, addr_of!(n.children[i])) {
                    if !ok {
                        return false;
                    }
                }
            }
        }
        Repr::N16(bx) => {
            let n = &**bx;
            let keys = vol_copy(addr_of!(n.keys)).assume_init();
            let c = (node.count as usize).min(16);
            for (i, &k) in keys.iter().enumerate().take(c) {
                if let Some(ok) = visit(k, addr_of!(n.children[i])) {
                    if !ok {
                        return false;
                    }
                }
            }
        }
        Repr::N48(bx) => {
            let n = &**bx;
            // One volatile copy of the whole index, then SIMD next-edge
            // stepping over the local bytes. Same trust model as the old
            // per-byte volatile loop: the bytes are unvalidated, slots are
            // bounds-clamped, and `visit` validates before dereferencing.
            let index = vol_copy(addr_of!(n.index)).assume_init();
            let mut from = 0usize;
            while let Some(b) = crate::simd::next_edge48(&index, from) {
                from = b as usize + 1;
                let slot = index[b as usize];
                if slot as usize >= 48 {
                    continue; // torn index byte; validation will reject
                }
                if let Some(ok) = visit(b, addr_of!(n.children[slot as usize])) {
                    if !ok {
                        return false;
                    }
                }
            }
        }
        Repr::N256(bx) => {
            let n = &**bx;
            for b in 0..=255u8 {
                if let Some(ok) = visit(b, addr_of!(n.children[b as usize])) {
                    if !ok {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{OwnedLeaf, SliceResolver};

    const R: SliceResolver = SliceResolver;
    const ALWAYS: fn() -> bool = || true;
    const NEVER: fn() -> bool = || false;

    fn build(keys: &[&str]) -> Art<OwnedLeaf> {
        let mut t = Art::new();
        for (i, k) in keys.iter().enumerate() {
            t.insert(&R, k.as_bytes(), OwnedLeaf::new(k.as_bytes(), i as u64));
        }
        t
    }

    #[test]
    fn raw_search_matches_locked_search() {
        let keys = ["romane", "romanus", "romulus", "rubens", "ruber", "a", "ab"];
        let t = build(&keys);
        for k in keys {
            let raw = unsafe { search_raw(&t, &R, k.as_bytes(), &ALWAYS) }; // SAFETY: the tree is locally owned and unmutated during the call
            let locked = t.search(&R, k.as_bytes()).copied();
            match raw {
                RawRead::Found(l) => assert_eq!(Some(l), locked, "key {k}"),
                other => panic!("expected Found for {k}, got {other:?}"),
            }
        }
        for k in ["rom", "romanes", "z", ""] {
            assert_eq!(
                unsafe { search_raw(&t, &R, k.as_bytes(), &ALWAYS) }, // SAFETY: the tree is locally owned and unmutated during the call
                RawRead::NotFound,
                "key {k:?}"
            );
        }
    }

    #[test]
    fn raw_search_over_many_keys_and_node_kinds() {
        let mut t = Art::new();
        let keys: Vec<String> = (0..4000)
            .map(|i| format!("key{:05}", i * 13 % 4000))
            .collect();
        for k in &keys {
            t.insert(&R, k.as_bytes(), OwnedLeaf::new(k.as_bytes(), 7));
        }
        // Wide fan-out at the root byte to exercise N48/N256.
        for b in 1..=200u8 {
            let k = [b, b'q'];
            t.insert(&R, &k, OwnedLeaf::new(&k, b as u64));
        }
        for k in &keys {
            assert!(matches!(
                unsafe { search_raw(&t, &R, k.as_bytes(), &ALWAYS) }, // SAFETY: the tree is locally owned and unmutated during the call
                RawRead::Found(_)
            ));
        }
        for b in 1..=200u8 {
            let k = [b, b'q'];
            assert!(matches!(
                unsafe { search_raw(&t, &R, &k, &ALWAYS) }, // SAFETY: the tree is locally owned and unmutated during the call
                RawRead::Found(_)
            ));
        }
    }

    #[test]
    fn failing_validation_reports_retry() {
        let t = build(&["alpha", "beta"]);
        assert_eq!(
            unsafe { search_raw(&t, &R, b"alpha", &NEVER) }, // SAFETY: the tree is locally owned and unmutated during the call
            RawRead::Retry
        );
        let mut out = Vec::new();
        assert!(!unsafe { range_collect_raw(&t, &R, b"a", b"z", &NEVER, &mut out) }); // SAFETY: the tree is locally owned and unmutated during the call
        assert!(out.is_empty());
    }

    #[test]
    fn raw_range_matches_locked_range() {
        let mut t = Art::new();
        for i in 0..500 {
            let k = format!("k{:04}", i);
            t.insert(&R, k.as_bytes(), OwnedLeaf::new(k.as_bytes(), i as u64));
        }
        let mut raw = Vec::new();
        assert!(unsafe { range_collect_raw(&t, &R, b"k0100", b"k0199", &ALWAYS, &mut raw) }); // SAFETY: the tree is locally owned and unmutated during the call
        let mut locked = Vec::new();
        t.for_each_in_range(&R, b"k0100", b"k0199", |l| locked.push(*l));
        assert_eq!(raw.len(), 100);
        assert_eq!(raw, locked);
    }

    #[test]
    fn raw_range_includes_boundary_prefix_keys() {
        let t = build(&["ab", "abc", "abd", "ac"]);
        let mut raw = Vec::new();
        assert!(unsafe { range_collect_raw(&t, &R, b"ab", b"abc", &ALWAYS, &mut raw) }); // SAFETY: the tree is locally owned and unmutated during the call
        let got: Vec<&[u8]> = raw.iter().map(|l| l.key.as_slice()).collect();
        assert_eq!(got, vec![b"ab".as_slice(), b"abc".as_slice()]);
    }

    #[test]
    fn empty_tree_raw_reads() {
        let t: Art<OwnedLeaf> = Art::new();
        assert_eq!(
            unsafe { search_raw(&t, &R, b"x", &ALWAYS) }, // SAFETY: the tree is locally owned and unmutated during the call
            RawRead::NotFound
        );
        let mut out = Vec::new();
        assert!(unsafe { range_collect_raw(&t, &R, b"", b"zzz", &ALWAYS, &mut out) }); // SAFETY: the tree is locally owned and unmutated during the call
        assert!(out.is_empty());
    }
}
