//! Lazy in-order iteration over an [`Art`].
//!
//! [`Art::for_each`] is the cheapest full traversal, but callers that want
//! to stop early (first-N queries, min/max, cursors) need a pull-based
//! iterator. [`ArtIter`] keeps an explicit stack of pending children —
//! O(height) space — and yields leaves in ascending key order without
//! visiting more nodes than it must.

use crate::node::{Child, Node};
use crate::tree::Art;

/// Lazy in-order leaf iterator. Created by [`Art::iter`].
pub struct ArtIter<'a, L> {
    /// Children still to be expanded; the next leaf in order is reached by
    /// expanding the top of the stack.
    stack: Vec<&'a Child<L>>,
}

impl<'a, L> ArtIter<'a, L> {
    pub(crate) fn new(root: Option<&'a Child<L>>) -> ArtIter<'a, L> {
        ArtIter {
            stack: root.into_iter().collect(),
        }
    }

    /// Push `node`'s children in *reverse* order so the smallest edge is
    /// popped first.
    fn push_children(&mut self, node: &'a Node<L>) {
        let mut children: Vec<&'a Child<L>> = Vec::with_capacity(node.count as usize);
        node.for_each_child(|_, c| children.push(c));
        for c in children.into_iter().rev() {
            self.stack.push(c);
        }
    }
}

impl<'a, L> Iterator for ArtIter<'a, L> {
    type Item = &'a L;

    fn next(&mut self) -> Option<&'a L> {
        while let Some(c) = self.stack.pop() {
            match c {
                Child::Leaf(l) => return Some(l),
                Child::Inner(n) => self.push_children(n),
            }
        }
        None
    }
}

impl<L> Art<L> {
    /// Lazy in-order iterator over all leaves (ascending key order).
    pub fn iter(&self) -> ArtIter<'_, L> {
        ArtIter::new(self.root_child())
    }

    /// The leaf with the smallest key, if any — O(height), no full scan.
    pub fn min(&self) -> Option<&L> {
        self.iter().next()
    }

    /// The leaf with the largest key, if any — O(height) via a rightmost
    /// descent.
    pub fn max(&self) -> Option<&L> {
        let mut cur = self.root_child()?;
        loop {
            match cur {
                Child::Leaf(l) => return Some(l),
                Child::Inner(n) => {
                    let mut last = None;
                    n.for_each_child(|_, c| last = Some(c));
                    cur = last.expect("inner nodes have children");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Art, OwnedLeaf, SliceResolver};

    const R: SliceResolver = SliceResolver;

    fn tree(keys: &[&str]) -> Art<OwnedLeaf> {
        let mut t = Art::new();
        for (i, k) in keys.iter().enumerate() {
            t.insert(&R, k.as_bytes(), OwnedLeaf::new(k.as_bytes(), i as u64));
        }
        t
    }

    #[test]
    fn iterates_in_key_order() {
        let t = tree(&["pear", "apple", "app", "banana", "z", "a"]);
        let got: Vec<&[u8]> = t.iter().map(|l| l.key.as_slice()).collect();
        assert_eq!(
            got,
            vec![b"a".as_slice(), b"app", b"apple", b"banana", b"pear", b"z"]
        );
    }

    #[test]
    fn empty_and_single() {
        let t: Art<OwnedLeaf> = Art::new();
        assert!(t.iter().next().is_none());
        assert!(t.min().is_none());
        assert!(t.max().is_none());

        let t = tree(&["only"]);
        assert_eq!(t.iter().count(), 1);
        assert_eq!(t.min().unwrap().key.as_slice(), b"only");
        assert_eq!(t.max().unwrap().key.as_slice(), b"only");
    }

    #[test]
    fn early_termination_is_lazy() {
        let mut t = Art::new();
        for i in 0..10_000u64 {
            let k = format!("{i:06}");
            t.insert(&R, k.as_bytes(), OwnedLeaf::new(k.as_bytes(), i));
        }
        // take(3) must not visit all 10k leaves (behavioural check: it
        // returns the 3 smallest, and nothing panics on a partial walk).
        let first: Vec<u64> = t.iter().take(3).map(|l| l.val).collect();
        assert_eq!(first, vec![0, 1, 2]);
        assert_eq!(t.min().unwrap().val, 0);
        assert_eq!(t.max().unwrap().val, 9_999);
    }

    #[test]
    fn iter_matches_for_each() {
        let t = tree(&["d", "b", "c", "a", "ab", "abc", "abcd"]);
        let mut via_for_each = Vec::new();
        t.for_each(|l| via_for_each.push(l.val));
        let via_iter: Vec<u64> = t.iter().map(|l| l.val).collect();
        assert_eq!(via_for_each, via_iter);
    }

    #[test]
    fn min_max_after_removals() {
        let mut t = tree(&["a", "m", "z"]);
        assert_eq!(t.min().unwrap().key.as_slice(), b"a");
        assert_eq!(t.max().unwrap().key.as_slice(), b"z");
        t.remove(&R, b"a");
        t.remove(&R, b"z");
        assert_eq!(t.min().unwrap().key.as_slice(), b"m");
        assert_eq!(t.max().unwrap().key.as_slice(), b"m");
    }
}
