//! Runtime-selected SIMD search over NODE16/NODE48 edge arrays.
//!
//! ART's two mid-size node representations are exactly the shapes that
//! vectorize well (Leis et al. §IV uses SSE for NODE16): NODE16 keeps up
//! to 16 sorted key bytes in a flat array, and NODE48 keeps a 256-byte
//! edge index where `0xFF` means "absent". Both point lookups and ordered
//! scan descent spend their inner-node time in these two searches, so the
//! same two primitives serve both paths:
//!
//! * [`find_key16`] — position of edge byte `b` among the first `count`
//!   keys (NODE16 equality search);
//! * [`next_edge48`] — smallest *present* edge byte `≥ from` in a NODE48
//!   index (ordered-iteration stepping; `from = 0` gives `first_byte`).
//!
//! Vector code is compiled per-arch behind `cfg` (SSE2 is part of the
//! x86_64 baseline, NEON of the aarch64 baseline, so no runtime feature
//! detection is needed) with a portable scalar fallback that is also the
//! correctness oracle for the equivalence tests below. Selection is
//! runtime-switchable — `HART_FORCE_SCALAR=1` in the environment or
//! [`force_scalar`] from code — so CI can run the whole suite on the
//! scalar path and benchmarks can measure the two side by side.
//!
//! All inputs are plain byte arrays (local copies in the optimistic path,
//! lock-protected arrays in the locked path), so every function here is
//! safe code from the caller's point of view; `unsafe` is confined to the
//! intrinsics, which have no preconditions beyond the baseline ISA.

use std::sync::atomic::{AtomicU8, Ordering};

/// NODE48 index byte meaning "no edge" (mirrors `node::NO_SLOT`).
const ABSENT: u8 = 0xFF;

const MODE_UNDECIDED: u8 = 0;
const MODE_VECTOR: u8 = 1;
const MODE_SCALAR: u8 = 2;

/// Lazily-initialized dispatch mode, shared by every tree in the process.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNDECIDED);

/// Does this build have a vector implementation at all?
pub const HAVE_VECTOR: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

#[inline]
fn vector_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_VECTOR => true,
        MODE_SCALAR => false,
        _ => init_mode(),
    }
}

/// The `HART_FORCE_SCALAR` environment override: set and neither empty
/// nor `"0"`. Parsed once per process so the dispatch path and the
/// self-test cannot drift on what counts as "set".
pub fn env_forces_scalar() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var_os("HART_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

#[cold]
fn init_mode() -> bool {
    let on = HAVE_VECTOR && !env_forces_scalar();
    MODE.store(
        if on { MODE_VECTOR } else { MODE_SCALAR },
        Ordering::Relaxed,
    );
    on
}

/// Force the scalar path on (`true`) or restore the default selection
/// (`false`: vector when the build has one and the environment does not
/// forbid it). Process-global; intended for tests and benchmarks.
pub fn force_scalar(on: bool) {
    if on {
        MODE.store(MODE_SCALAR, Ordering::Relaxed);
    } else {
        MODE.store(MODE_UNDECIDED, Ordering::Relaxed);
        init_mode();
    }
}

/// Is the vector path currently selected?
pub fn vector_active() -> bool {
    vector_enabled()
}

/// Position of edge byte `b` among the first `count` entries of a NODE16
/// key array (first match, like `slice::iter().position()`). `count` is
/// clamped to 16 so torn counts from the optimistic path stay in bounds.
#[inline]
pub fn find_key16(keys: &[u8; 16], count: usize, b: u8) -> Option<usize> {
    if vector_enabled() {
        vector::find_key16(keys, count.min(16), b)
    } else {
        find_key16_scalar(keys, count, b)
    }
}

/// Portable reference implementation of [`find_key16`].
#[inline]
pub fn find_key16_scalar(keys: &[u8; 16], count: usize, b: u8) -> Option<usize> {
    keys[..count.min(16)].iter().position(|&k| k == b)
}

/// Bitmask of the positions in `bytes` that equal `b`: bit `i` is set iff
/// `bytes[i] == b`. `bytes` must be at most 64 long (callers scanning a
/// longer array — the directory's packed per-bucket fingerprint arrays —
/// chunk it). Unlike [`find_key16`] this reports *every* match: a
/// fingerprint hit still needs a full key compare, and several entries in
/// one bucket may share a fingerprint byte.
#[inline]
pub fn match_byte64(bytes: &[u8], b: u8) -> u64 {
    debug_assert!(bytes.len() <= 64);
    if vector_enabled() {
        vector::match_byte64(bytes, b)
    } else {
        match_byte64_scalar(bytes, b)
    }
}

/// Portable reference implementation of [`match_byte64`].
#[inline]
pub fn match_byte64_scalar(bytes: &[u8], b: u8) -> u64 {
    let mut mask = 0u64;
    for (i, &x) in bytes.iter().take(64).enumerate() {
        mask |= ((x == b) as u64) << i;
    }
    mask
}

/// Smallest edge byte `≥ from` whose NODE48 index entry is present
/// (`!= 0xFF`). `from` may be up to 256 (exclusive upper bound), which
/// makes `next_edge48(ix, b + 1)` a natural iteration step.
#[inline]
pub fn next_edge48(index: &[u8; 256], from: usize) -> Option<u8> {
    if vector_enabled() {
        vector::next_edge48(index, from)
    } else {
        next_edge48_scalar(index, from)
    }
}

/// Portable reference implementation of [`next_edge48`].
#[inline]
pub fn next_edge48_scalar(index: &[u8; 256], from: usize) -> Option<u8> {
    (from.min(256)..256)
        .find(|&b| index[b] != ABSENT)
        .map(|b| b as u8)
}

#[cfg(target_arch = "x86_64")]
mod vector {
    //! SSE2 lanes — unconditionally available on x86_64.
    use super::ABSENT;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    #[inline]
    pub fn find_key16(keys: &[u8; 16], count: usize, b: u8) -> Option<usize> {
        // SAFETY: SSE2 is part of the x86_64 baseline; the unaligned load
        // reads exactly the 16 bytes of `keys`.
        unsafe {
            let v = _mm_loadu_si128(keys.as_ptr() as *const __m128i);
            let eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(b as i8));
            let mask = (_mm_movemask_epi8(eq) as u32) & lane_mask(count);
            (mask != 0).then(|| mask.trailing_zeros() as usize)
        }
    }

    /// Bitmask selecting the first `count` (≤ 16) byte lanes.
    #[inline]
    fn lane_mask(count: usize) -> u32 {
        if count >= 16 {
            0xFFFF
        } else {
            (1u32 << count) - 1
        }
    }

    #[inline]
    pub fn match_byte64(bytes: &[u8], b: u8) -> u64 {
        let mut mask = 0u64;
        let mut i = 0usize;
        while i + 16 <= bytes.len() {
            // SAFETY: `i + 16 <= bytes.len()`, so the unaligned load reads
            // 16 in-bounds bytes; SSE2 is part of the x86_64 baseline.
            let m = unsafe {
                let v = _mm_loadu_si128(bytes.as_ptr().add(i) as *const __m128i);
                let eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(b as i8));
                _mm_movemask_epi8(eq) as u32 as u64
            };
            mask |= m << i;
            i += 16;
        }
        for (j, &x) in bytes[i..].iter().enumerate() {
            mask |= ((x == b) as u64) << (i + j);
        }
        mask
    }

    #[inline]
    pub fn next_edge48(index: &[u8; 256], from: usize) -> Option<u8> {
        if from >= 256 {
            return None;
        }
        let first_chunk = from / 16;
        for chunk in first_chunk..16 {
            let base = chunk * 16;
            // SAFETY: `base + 16 <= 256`, inside the index array.
            let present = unsafe {
                let v = _mm_loadu_si128(index.as_ptr().add(base) as *const __m128i);
                let absent = _mm_cmpeq_epi8(v, _mm_set1_epi8(ABSENT as i8));
                !(_mm_movemask_epi8(absent) as u32) & 0xFFFF
            };
            let mask = if chunk == first_chunk {
                present & !((1u32 << (from - base)) - 1)
            } else {
                present
            };
            if mask != 0 {
                return Some((base + mask.trailing_zeros() as usize) as u8);
            }
        }
        None
    }
}

#[cfg(target_arch = "aarch64")]
mod vector {
    //! NEON lanes — unconditionally available on aarch64.
    use super::ABSENT;
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    /// Nibble-per-lane movemask substitute: lane `i`'s comparison result
    /// occupies bits `[4i, 4i+4)` of the returned word (the classic
    /// `vshrn` trick — NEON has no `movemask`).
    #[inline]
    unsafe fn nibble_mask(eq: uint8x16_t) -> u64 {
        let narrowed = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
        vget_lane_u64(vreinterpret_u64_u8(narrowed), 0)
    }

    #[inline]
    pub fn find_key16(keys: &[u8; 16], count: usize, b: u8) -> Option<usize> {
        // SAFETY: NEON is part of the aarch64 baseline; the load reads the
        // 16 bytes of `keys`.
        unsafe {
            let v = vld1q_u8(keys.as_ptr());
            let eq = vceqq_u8(v, vdupq_n_u8(b));
            let mask = nibble_mask(eq) & lane_mask(count);
            (mask != 0).then(|| (mask.trailing_zeros() / 4) as usize)
        }
    }

    /// Nibble-mask selecting the first `count` (≤ 16) byte lanes.
    #[inline]
    fn lane_mask(count: usize) -> u64 {
        if count >= 16 {
            u64::MAX
        } else {
            (1u64 << (4 * count)) - 1
        }
    }

    #[inline]
    pub fn match_byte64(bytes: &[u8], b: u8) -> u64 {
        let mut mask = 0u64;
        let mut i = 0usize;
        while i + 16 <= bytes.len() {
            // SAFETY: `i + 16 <= bytes.len()`, so the load reads 16
            // in-bounds bytes; NEON is part of the aarch64 baseline.
            let nib = unsafe {
                let v = vld1q_u8(bytes.as_ptr().add(i));
                nibble_mask(vceqq_u8(v, vdupq_n_u8(b)))
            };
            // Compress nibble-per-lane to bit-per-lane: keep each lane's
            // low nibble bit, then walk the (sparse) set bits.
            let mut nib = nib & 0x1111_1111_1111_1111;
            while nib != 0 {
                mask |= 1u64 << (i + (nib.trailing_zeros() / 4) as usize);
                nib &= nib - 1;
            }
            i += 16;
        }
        for (j, &x) in bytes[i..].iter().enumerate() {
            mask |= ((x == b) as u64) << (i + j);
        }
        mask
    }

    #[inline]
    pub fn next_edge48(index: &[u8; 256], from: usize) -> Option<u8> {
        if from >= 256 {
            return None;
        }
        let first_chunk = from / 16;
        for chunk in first_chunk..16 {
            let base = chunk * 16;
            // SAFETY: `base + 16 <= 256`, inside the index array.
            let present = unsafe {
                let v = vld1q_u8(index.as_ptr().add(base));
                let absent = vceqq_u8(v, vdupq_n_u8(ABSENT));
                !nibble_mask(absent)
            };
            let mask = if chunk == first_chunk {
                present & !((1u64 << (4 * (from - base))) - 1)
            } else {
                present
            };
            if mask != 0 {
                return Some((base + (mask.trailing_zeros() / 4) as usize) as u8);
            }
        }
        None
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod vector {
    //! No vector ISA on this target: the "vector" entry points are the
    //! scalar reference (never selected at runtime — `HAVE_VECTOR` is
    //! false — but keeps the dispatch code arch-independent).
    #[inline]
    pub fn find_key16(keys: &[u8; 16], count: usize, b: u8) -> Option<usize> {
        super::find_key16_scalar(keys, count, b)
    }

    #[inline]
    pub fn match_byte64(bytes: &[u8], b: u8) -> u64 {
        super::match_byte64_scalar(bytes, b)
    }

    #[inline]
    pub fn next_edge48(index: &[u8; 256], from: usize) -> Option<u8> {
        super::next_edge48_scalar(index, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distinct sorted key arrays of every occupancy, with assorted
    /// spacings/offsets so matches land in every lane.
    fn key_arrays(count: usize) -> Vec<[u8; 16]> {
        let mut out = Vec::new();
        for (stride, offset, fill) in [
            (1usize, 0usize, 0u8),
            (1, 0x40, 0),
            (7, 3, 0),
            (16, 0, 0xFF),
            (15, 15, 0xAB),
        ] {
            let mut keys = [fill; 16];
            for (i, k) in keys.iter_mut().enumerate().take(count) {
                *k = (offset + i * stride).min(255) as u8;
            }
            out.push(keys);
        }
        out
    }

    /// Satellite: exhaustive NODE16 equivalence — every occupancy level
    /// (0..=16) × every probe byte (0x00..=0xFF) × several layouts must be
    /// bit-identical between the vector and scalar paths.
    #[test]
    fn find_key16_vector_matches_scalar_exhaustively() {
        for count in 0..=16usize {
            for keys in key_arrays(count) {
                for b in 0..=255u8 {
                    assert_eq!(
                        vector::find_key16(&keys, count, b),
                        find_key16_scalar(&keys, count, b),
                        "count {count} byte {b:#04x} keys {keys:?}"
                    );
                }
            }
        }
    }

    /// Duplicate key bytes (impossible in a committed node, possible in a
    /// torn optimistic copy) must still resolve to the same first match.
    #[test]
    fn find_key16_first_match_on_duplicates() {
        let keys = [7u8; 16];
        for count in 0..=16usize {
            for b in [0u8, 7, 255] {
                assert_eq!(
                    vector::find_key16(&keys, count, b),
                    find_key16_scalar(&keys, count, b),
                );
            }
        }
        assert_eq!(find_key16(&keys, 16, 7), Some(0));
    }

    /// Torn counts larger than 16 are clamped, never out of bounds.
    #[test]
    fn find_key16_clamps_count() {
        let mut keys = [0u8; 16];
        keys[15] = 9;
        assert_eq!(find_key16(&keys, usize::MAX, 9), Some(15));
        assert_eq!(find_key16_scalar(&keys, usize::MAX, 9), Some(15));
    }

    /// Exhaustive fingerprint-scan equivalence: every length (0..=64) ×
    /// every probe byte × assorted fill patterns must produce bit-identical
    /// match masks on the vector and scalar paths — including lengths that
    /// leave a sub-16-byte tail for the vector chunk loop.
    #[test]
    fn match_byte64_vector_matches_scalar_exhaustively() {
        let mut state = 0xD15_7A6u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..=64usize {
            let mut patterns: Vec<Vec<u8>> = vec![
                vec![0u8; len],
                vec![0xFF; len],
                (0..len).map(|i| i as u8).collect(),
                (0..len).map(|i| (i % 3) as u8).collect(),
            ];
            patterns.push((0..len).map(|_| (next() % 256) as u8).collect());
            for bytes in &patterns {
                for b in 0..=255u8 {
                    assert_eq!(
                        vector::match_byte64(bytes, b),
                        match_byte64_scalar(bytes, b),
                        "len {len} byte {b:#04x} bytes {bytes:?}"
                    );
                }
            }
        }
    }

    /// The mask reports every match position, not just the first — the
    /// property the fingerprint probe relies on to visit all candidates.
    #[test]
    fn match_byte64_reports_all_positions() {
        let mut bytes = [0u8; 64];
        for i in [0usize, 15, 16, 17, 31, 32, 63] {
            bytes[i] = 7;
        }
        let expect = [0usize, 15, 16, 17, 31, 32, 63]
            .iter()
            .fold(0u64, |m, &i| m | 1 << i);
        assert_eq!(match_byte64(&bytes, 7), expect);
        assert_eq!(match_byte64_scalar(&bytes, 7), expect);
        assert_eq!(match_byte64(&[], 7), 0);
        assert_eq!(match_byte64(&bytes[..0], 0), 0);
        // All-match saturates every bit of the mask.
        assert_eq!(match_byte64(&[9u8; 64], 9), u64::MAX);
    }

    /// Satellite: exhaustive NODE48 equivalence — every occupancy level
    /// (0..=48) × every starting byte (0..=256) must be bit-identical
    /// between the vector and scalar paths.
    #[test]
    fn next_edge48_vector_matches_scalar_exhaustively() {
        // Deterministic xorshift so the occupied-byte pattern varies by
        // occupancy without an RNG dependency.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for occupancy in 0..=48usize {
            let mut index = [0xFFu8; 256];
            let mut placed = 0usize;
            while placed < occupancy {
                let b = (next() % 256) as usize;
                if index[b] == 0xFF {
                    index[b] = placed as u8;
                    placed += 1;
                }
            }
            for from in 0..=256usize {
                assert_eq!(
                    vector::next_edge48(&index, from),
                    next_edge48_scalar(&index, from),
                    "occupancy {occupancy} from {from}"
                );
            }
        }
    }

    /// Edge cases: empty index, full index, single edge at each boundary.
    #[test]
    fn next_edge48_boundaries() {
        let empty = [0xFFu8; 256];
        for from in [0usize, 1, 255, 256, usize::MAX] {
            assert_eq!(next_edge48(&empty, from), None);
            assert_eq!(next_edge48_scalar(&empty, from), None);
        }
        for edge in [0usize, 1, 15, 16, 47, 127, 128, 254, 255] {
            let mut index = [0xFFu8; 256];
            index[edge] = 0;
            assert_eq!(next_edge48(&index, 0), Some(edge as u8));
            assert_eq!(next_edge48(&index, edge), Some(edge as u8));
            assert_eq!(next_edge48(&index, edge + 1), None);
        }
        let full: [u8; 256] = std::array::from_fn(|i| (i % 48) as u8);
        for from in 0..256usize {
            assert_eq!(next_edge48(&full, from), Some(from as u8));
        }
    }

    /// The runtime switch actually flips dispatch and restores.
    #[test]
    fn force_scalar_round_trip() {
        let keys: [u8; 16] = std::array::from_fn(|i| i as u8 * 3);
        force_scalar(true);
        assert!(!vector_active());
        assert_eq!(find_key16(&keys, 16, 9), Some(3));
        force_scalar(false);
        // Restoring re-applies the environment override, so the suite can
        // run wholesale under HART_FORCE_SCALAR=1.
        assert_eq!(vector_active(), HAVE_VECTOR && !env_forces_scalar());
        assert_eq!(find_key16(&keys, 16, 9), Some(3));
    }
}
