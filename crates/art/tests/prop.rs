//! Property-based tests: the adaptive radix tree must behave exactly like
//! a sorted map for arbitrary operation sequences, and its structural
//! invariants (node counts, path compression, adaptive sizing) must hold
//! at every step.

use hart_art::{Art, OwnedLeaf, SliceResolver};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

const R: SliceResolver = SliceResolver;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>, u64),
    Remove(Vec<u8>),
    Search(Vec<u8>),
}

/// Keys of 1–12 bytes from a small alphabet: plenty of shared prefixes,
/// prefix-of-prefix cases, and node-kind churn.
fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'z'), Just(b'0')],
        1..12,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Remove),
        arb_key().prop_map(Op::Search),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn behaves_like_btreemap(ops in vec(arb_op(), 1..400)) {
        let mut art: Art<OwnedLeaf> = Art::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let old = art.insert(&R, k, OwnedLeaf::new(k, *v)).map(|l| l.val);
                    prop_assert_eq!(old, model.insert(k.clone(), *v));
                }
                Op::Remove(k) => {
                    let got = art.remove(&R, k).map(|l| l.val);
                    prop_assert_eq!(got, model.remove(k));
                }
                Op::Search(k) => {
                    let got = art.search(&R, k).map(|l| l.val);
                    prop_assert_eq!(got, model.get(k).copied());
                }
            }
            prop_assert_eq!(art.len(), model.len());
        }
        art.check_invariants(&R).map_err(TestCaseError::fail)?;

        // Ordered iteration equals the model's.
        let mut got = Vec::new();
        art.for_each(|l| got.push((l.key.as_slice().to_vec(), l.val)));
        let expect: Vec<(Vec<u8>, u64)> =
            model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn range_scan_equals_model(
        keys in vec((arb_key(), any::<u64>()), 1..200),
        lo in arb_key(),
        hi in arb_key(),
    ) {
        let mut art: Art<OwnedLeaf> = Art::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, v) in &keys {
            art.insert(&R, k, OwnedLeaf::new(k, *v));
            model.insert(k.clone(), *v);
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut got = Vec::new();
        art.for_each_in_range(&R, &lo, &hi, |l| {
            got.push((l.key.as_slice().to_vec(), l.val))
        });
        let expect: Vec<(Vec<u8>, u64)> =
            model.range(lo..=hi).map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn insert_all_then_remove_all_is_empty(keys in vec(arb_key(), 1..300)) {
        let mut art: Art<OwnedLeaf> = Art::new();
        let mut distinct: Vec<Vec<u8>> = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for k in &keys {
            art.insert(&R, k, OwnedLeaf::new(k, 1));
        }
        prop_assert_eq!(art.len(), distinct.len());
        art.check_invariants(&R).map_err(TestCaseError::fail)?;
        for k in &distinct {
            prop_assert!(art.remove(&R, k).is_some());
        }
        prop_assert!(art.is_empty());
        prop_assert_eq!(art.memory_bytes(), std::mem::size_of::<Art<OwnedLeaf>>());
    }

    #[test]
    fn height_bounded_by_longest_key(keys in vec(arb_key(), 1..200)) {
        let mut art: Art<OwnedLeaf> = Art::new();
        let mut max_len = 0;
        for k in &keys {
            max_len = max_len.max(k.len());
            art.insert(&R, k, OwnedLeaf::new(k, 0));
        }
        // Terminated view adds one byte; each inner level consumes ≥ 1.
        prop_assert!(art.height() <= max_len + 1,
            "height {} exceeds max key length {}", art.height(), max_len);
    }
}
