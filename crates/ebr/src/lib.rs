//! Minimal epoch-based reclamation (EBR) for HART's optimistic read path.
//!
//! Optimistic readers traverse DRAM index structures (ART nodes, directory
//! bucket tables) without holding any lock. Writers, meanwhile, may unlink
//! and free those same nodes. A seqlock version check tells a reader that
//! what it read was *stale*, but cannot stop the underlying allocation from
//! being returned to the allocator while the reader is still mid-load —
//! that is a use-after-free even if the loaded bytes are discarded.
//!
//! This crate closes the gap crossbeam-epoch style (crossbeam is not
//! available offline): readers *pin* the current global epoch into a
//! per-thread slot before touching shared memory and unpin when done;
//! writers *retire* unlinked allocations tagged with the epoch at unlink
//! time instead of freeing them. The global epoch only advances when every
//! pinned slot has caught up to it, so any allocation retired at epoch `t`
//! is provably unreachable by all readers once the epoch reaches `t + 2`;
//! we free with an extra epoch of slack at `t + 3`.
//!
//! Design choices for this workspace:
//! - Fixed slot table (`MAX_THREADS`): a thread that cannot grab a slot gets
//!   `pin() == None`, and HART falls back to its pessimistic read-locked
//!   path — reclamation never blocks and never allocates on the reader side.
//! - Reader pins are plain stores + loads on a cache-line-padded slot
//!   (no RMW on shared lines), so the read path stays contention-free.
//! - Retired garbage lives in a global mutex-protected bag; only writers
//!   (already serialized per shard) and the collector touch it.

use parking_lot::Mutex;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of threads that can be pinned simultaneously.
const MAX_THREADS: usize = 64;

/// Slot value: unowned, available for any thread to claim.
const SLOT_FREE: u64 = u64::MAX;
/// Slot value: owned by a thread but not currently pinned.
const SLOT_IDLE: u64 = u64::MAX - 1;

/// Retired allocations younger than this many epochs are never freed.
/// Correctness needs 2; we keep one extra epoch of slack.
const FREE_LAG: u64 = 3;

/// Collect eagerly once this many retired objects accumulate.
const COLLECT_THRESHOLD: usize = 64;

#[repr(align(128))]
struct PaddedSlot(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)]
const SLOT_INIT: PaddedSlot = PaddedSlot(AtomicU64::new(SLOT_FREE));

static SLOTS: [PaddedSlot; MAX_THREADS] = [SLOT_INIT; MAX_THREADS];

/// Global epoch. Starts above `FREE_LAG` so age arithmetic never underflows.
static EPOCH: AtomicU64 = AtomicU64::new(FREE_LAG + 1);

/// Retired allocations: `(retire_epoch, payload)`.
static GARBAGE: Mutex<Vec<(u64, Box<dyn Send>)>> = Mutex::new_ranked(
    Vec::new(),
    parking_lot::rank::EBR_GARBAGE,
    false,
    "ebr::GARBAGE",
);

thread_local! {
    static HANDLE: ThreadHandle = const { ThreadHandle { slot: Cell::new(None), depth: Cell::new(0) } };
}

struct ThreadHandle {
    /// Index into `SLOTS` once claimed.
    slot: Cell<Option<usize>>,
    /// Nested pin depth; only the outermost pin publishes/retracts.
    depth: Cell<u32>,
}

impl ThreadHandle {
    fn claim_slot(&self) -> Option<usize> {
        if let Some(idx) = self.slot.get() {
            return Some(idx);
        }
        for (idx, slot) in SLOTS.iter().enumerate() {
            if slot
                .0
                .compare_exchange(SLOT_FREE, SLOT_IDLE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.slot.set(Some(idx));
                return Some(idx);
            }
        }
        None
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        if let Some(idx) = self.slot.get() {
            SLOTS[idx].0.store(SLOT_FREE, Ordering::Release);
        }
    }
}

/// An active pin. While any `Guard` lives on a thread, no allocation retired
/// after the pin was taken will be freed. Dropping the outermost guard
/// unpins the thread.
pub struct Guard {
    slot: usize,
    /// `!Send + !Sync`: the guard retracts a thread-local slot on drop.
    _not_send: PhantomData<*mut ()>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        HANDLE.with(|h| {
            let depth = h.depth.get();
            debug_assert!(depth > 0, "guard dropped with zero pin depth");
            h.depth.set(depth - 1);
            if depth == 1 {
                SLOTS[self.slot].0.store(SLOT_IDLE, Ordering::Release);
            }
        });
    }
}

/// Pin the current thread to the current epoch.
///
/// Returns `None` when all `MAX_THREADS` slots are owned by other live
/// threads; callers must then take their pessimistic (locked) path instead
/// of traversing optimistically. Nested pins are cheap and share the
/// outermost pin's epoch.
pub fn pin() -> Option<Guard> {
    HANDLE.with(|h| {
        let idx = h.claim_slot()?;
        let depth = h.depth.get();
        if depth == 0 {
            // Publish the epoch, re-checking that it did not advance between
            // the load and the store: the collector must never observe a slot
            // jumping backwards to a pre-advance epoch after it has decided
            // all pinned slots are current.
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                SLOTS[idx].0.store(e, Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        h.depth.set(depth + 1);
        Some(Guard {
            slot: idx,
            _not_send: PhantomData,
        })
    })
}

/// Retire an allocation: its destructor runs once every thread pinned at or
/// before the current epoch has unpinned. Call *after* the object has been
/// unlinked from all shared structures (and after the unlinking write
/// section's version bump, so optimistic readers either revalidate away or
/// are pinned and keep the memory alive).
pub fn defer_drop<T: Send + 'static>(garbage: T) {
    let mut expired = Vec::new();
    {
        let epoch = EPOCH.load(Ordering::SeqCst);
        let mut bag = GARBAGE.lock();
        bag.push((epoch, Box::new(garbage)));
        if bag.len() >= COLLECT_THRESHOLD {
            expired = collect_locked(&mut bag);
        }
    }
    drop(expired); // destructors run after the bag lock is released
}

/// Try to advance the epoch and free sufficiently old garbage.
/// Safe to call from any thread at any time; drops nothing that a pinned
/// reader could still reach.
pub fn try_collect() {
    let expired = {
        let mut bag = GARBAGE.lock();
        collect_locked(&mut bag)
    };
    drop(expired);
}

/// Split off the expired garbage under the bag lock and *return* it, so the
/// caller can run the destructors after unlocking: retired payloads can be
/// whole directory tables or ART subtrees, and running arbitrary `Drop` code
/// under the process-wide bag mutex would stall every concurrent retire
/// (directory migration retires one entry table per drained bucket, in
/// bursts).
fn collect_locked(bag: &mut Vec<(u64, Box<dyn Send>)>) -> Vec<(u64, Box<dyn Send>)> {
    let epoch = EPOCH.load(Ordering::SeqCst);
    // Advance only if every pinned slot has observed the current epoch.
    let all_current = SLOTS.iter().all(|s| {
        matches!(s.0.load(Ordering::SeqCst), SLOT_FREE | SLOT_IDLE)
            || s.0.load(Ordering::SeqCst) == epoch
    });
    let epoch = if all_current {
        match EPOCH.compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => epoch + 1,
            Err(now) => now,
        }
    } else {
        epoch
    };
    let mut expired = Vec::new();
    bag.retain_mut(|entry| {
        if entry.0 + FREE_LAG > epoch {
            true
        } else {
            expired.push((entry.0, std::mem::replace(&mut entry.1, Box::new(()))));
            false
        }
    });
    expired
}

/// Number of retired-but-not-yet-freed allocations. Test observability only.
pub fn pending_garbage() -> usize {
    GARBAGE.lock().len()
}

/// Drive collection until the bag is empty. Only meaningful when no thread
/// is pinned (e.g. test teardown); gives up after a bounded number of
/// rounds otherwise.
pub fn flush_for_tests() {
    for _ in 0..(2 * FREE_LAG + 2) {
        try_collect();
        if pending_garbage() == 0 {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn unpinned_garbage_is_freed_after_lag() {
        let drops = Arc::new(AtomicUsize::new(0));
        defer_drop(DropCounter(drops.clone()));
        flush_for_tests();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = pin().expect("slot available");
        defer_drop(DropCounter(drops.clone()));
        for _ in 0..10 {
            try_collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under an active pin");
        drop(guard);
        flush_for_tests();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    /// Destructors run outside the bag lock, so a retired object whose
    /// `Drop` retires *more* garbage (an ART subtree dropping its children,
    /// a directory table dropping shards) must not deadlock on the
    /// non-reentrant bag mutex.
    #[test]
    fn destructor_may_retire_more_garbage() {
        struct Cascading(Arc<AtomicUsize>);
        impl Drop for Cascading {
            fn drop(&mut self) {
                defer_drop(DropCounter(self.0.clone()));
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        defer_drop(Cascading(drops.clone()));
        flush_for_tests();
        flush_for_tests(); // second pass drains the cascade
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_share_a_slot() {
        let g1 = pin().expect("outer pin");
        let g2 = pin().expect("nested pin");
        assert_eq!(g1.slot, g2.slot);
        drop(g2);
        drop(g1);
    }

    #[test]
    fn cross_thread_pin_blocks_then_releases() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            let g = pin().expect("slot");
            ready_tx.send(()).unwrap();
            done_rx.recv().unwrap();
            drop(g);
        });
        ready_rx.recv().unwrap();
        defer_drop(DropCounter(drops.clone()));
        for _ in 0..10 {
            try_collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        done_tx.send(()).unwrap();
        t.join().unwrap();
        flush_for_tests();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
