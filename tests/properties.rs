//! Workspace-level property tests: every persistent index is a sorted map
//! (against a `BTreeMap` model) for arbitrary op sequences, and HART's
//! recovery is lossless for arbitrary final states.

use hart_suite::{all_trees, Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Update(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Search(Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // 1–10 bytes over a compact alphabet: heavy prefix sharing, keys both
    // shorter and longer than HART's 2-byte hash prefix.
    vec(
        prop_oneof![Just(b'A'), Just(b'B'), Just(b'a'), Just(b'1')],
        1..10,
    )
}

fn arb_value() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..16)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), arb_value()).prop_map(|(k, v)| Op::Insert(k, v)),
        (arb_key(), arb_value()).prop_map(|(k, v)| Op::Update(k, v)),
        arb_key().prop_map(Op::Remove),
        arb_key().prop_map(Op::Search),
    ]
}

fn apply(tree: &dyn PersistentIndex, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &Op) {
    match op {
        Op::Insert(k, v) => {
            tree.insert(&Key::new(k).unwrap(), &Value::new(v).unwrap())
                .unwrap();
            model.insert(k.clone(), v.clone());
        }
        Op::Update(k, v) => {
            let did = tree
                .update(&Key::new(k).unwrap(), &Value::new(v).unwrap())
                .unwrap();
            assert_eq!(did, model.contains_key(k), "[{}] update {k:?}", tree.name());
            if did {
                model.insert(k.clone(), v.clone());
            }
        }
        Op::Remove(k) => {
            let did = tree.remove(&Key::new(k).unwrap()).unwrap();
            assert_eq!(
                did,
                model.remove(k).is_some(),
                "[{}] remove {k:?}",
                tree.name()
            );
        }
        Op::Search(k) => {
            let got = tree.search(&Key::new(k).unwrap()).unwrap();
            assert_eq!(
                got.map(|v| v.as_slice().to_vec()),
                model.get(k).cloned(),
                "[{}] search {k:?}",
                tree.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_tree_is_a_sorted_map(ops in vec(arb_op(), 1..150)) {
        for tree in all_trees(PoolConfig { alloc_overhead_ns: 0, ..PoolConfig::test_small() }) {
            let mut model = BTreeMap::new();
            for op in &ops {
                apply(tree.as_ref(), &mut model, op);
                prop_assert_eq!(tree.len(), model.len(), "[{}]", tree.name());
            }
            for (k, v) in &model {
                let got = tree.search(&Key::new(k).unwrap()).unwrap();
                let got = got.map(|v| v.as_slice().to_vec());
                prop_assert_eq!(
                    got.as_ref(),
                    Some(v),
                    "[{}] final check {:?}", tree.name(), k
                );
            }
        }
    }

    #[test]
    fn hart_recovery_is_lossless(ops in vec(arb_op(), 1..120)) {
        let pool = Arc::new(PmemPool::new(PoolConfig {
            alloc_overhead_ns: 0,
            ..PoolConfig::test_small()
        }));
        let mut model = BTreeMap::new();
        {
            let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
            for op in &ops {
                apply(&h, &mut model, op);
            }
        }
        let r = Hart::recover(pool, HartConfig::default()).unwrap();
        prop_assert_eq!(r.len(), model.len());
        r.check_consistency().map_err(TestCaseError::fail)?;
        for (k, v) in &model {
            let got = r.search(&Key::new(k).unwrap()).unwrap();
            let got = got.map(|v| v.as_slice().to_vec());
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Ordered scan of everything matches the model order.
        let lo = Key::from_str("0").unwrap();
        let hi = Key::new(&[b'z'; 12]).unwrap();
        let scan: Vec<Vec<u8>> = r
            .range(&lo, &hi)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k.as_slice().to_vec())
            .collect();
        let expect: Vec<Vec<u8>> = model.keys().cloned().collect();
        prop_assert_eq!(scan, expect);
    }

    #[test]
    fn hart_is_correct_for_any_hash_key_len(
        ops in vec(arb_op(), 1..100),
        kh in 0usize..5,
    ) {
        // The hash split point is a pure routing decision: any k_h must
        // produce the same map (§III-A.1's complexity argument changes,
        // correctness must not).
        let pool = Arc::new(PmemPool::new(PoolConfig {
            alloc_overhead_ns: 0,
            ..PoolConfig::test_small()
        }));
        let h = Hart::create(pool, HartConfig::with_hash_key_len(kh)).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&h, &mut model, op);
        }
        prop_assert_eq!(h.len(), model.len());
        h.check_consistency().map_err(TestCaseError::fail)?;
        for (k, v) in &model {
            let got = h.search(&Key::new(k).unwrap()).unwrap();
            let got = got.map(|v| v.as_slice().to_vec());
            prop_assert_eq!(got.as_ref(), Some(v), "kh={}", kh);
        }
    }

    #[test]
    fn hart_crash_after_history_preserves_history(
        ops in vec(arb_op(), 1..100),
        extra_unpersisted in 0u64..6,
    ) {
        // Whatever single-threaded history completed before a crash must
        // be intact after recovery, regardless of trailing torn work.
        let pool = Arc::new(PmemPool::new(PoolConfig {
            alloc_overhead_ns: 0,
            crash_sim: true,
            ..PoolConfig::test_small()
        }));
        let mut model = BTreeMap::new();
        {
            let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
            for op in &ops {
                apply(&h, &mut model, op);
            }
            // Torn trailing work: fuse allows a few more persists, then the
            // machine dies mid-operation.
            pool.arm_persist_fuse(extra_unpersisted);
            let _ = h.insert(&Key::from_str("zzz-torn").unwrap(), &Value::from_u64(1));
        }
        pool.simulate_crash();
        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        r.check_consistency().map_err(TestCaseError::fail)?;
        for (k, v) in &model {
            let got = r.search(&Key::new(k).unwrap()).unwrap();
            let got = got.map(|v| v.as_slice().to_vec());
            prop_assert_eq!(
                got.as_ref(),
                Some(v),
                "completed op on {:?} lost", k
            );
        }
        // No value leaks either way.
        let s = r.alloc_stats();
        prop_assert_eq!(s.live[1] + s.live[2], s.live[0]);
    }
}
