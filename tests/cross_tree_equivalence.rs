//! Cross-tree equivalence: all four persistent indexes must agree with a
//! `BTreeMap` reference model (and therefore with each other) on arbitrary
//! operation sequences — the behavioural backbone of the whole evaluation:
//! the paper's comparisons are only meaningful if every tree computes the
//! same map.

use hart_suite::workloads::ALPHABET;
use hart_suite::{all_trees, Key, PoolConfig, Value};
use std::collections::BTreeMap;

/// Deterministic splitmix64 so the sequence is reproducible.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn key_from(r: u64, space: u64) -> Key {
    // Variable-length keys over the paper's alphabet, including keys
    // shorter than HART's hash prefix.
    let x = r % space;
    let len = 1 + (x % 11) as usize;
    let mut bytes = Vec::with_capacity(len);
    let mut v = x;
    for _ in 0..len {
        bytes.push(ALPHABET[(v % 17) as usize]);
        v /= 17;
    }
    Key::new(&bytes).unwrap()
}

fn value_from(r: u64) -> Value {
    // Exercise both value classes and the empty value.
    match r % 3 {
        0 => Value::from_u64(r),
        1 => Value::new(&r.to_le_bytes().repeat(2)).unwrap(),
        _ => Value::new(&r.to_le_bytes()[..(r % 9) as usize]).unwrap(),
    }
}

#[test]
fn random_ops_match_model_on_every_tree() {
    for tree in all_trees(PoolConfig {
        size_bytes: 64 << 20,
        ..PoolConfig::test_small()
    }) {
        let mut model: BTreeMap<Vec<u8>, Value> = BTreeMap::new();
        let mut rng = Rng(0xABCD_EF01);
        for step in 0..12_000u32 {
            let r = rng.next();
            let key = key_from(r, 4000);
            let mk = key.as_slice().to_vec();
            match r % 10 {
                0..=3 => {
                    let v = value_from(r >> 8);
                    tree.insert(&key, &v).unwrap();
                    model.insert(mk, v);
                }
                4..=5 => {
                    let v = value_from(r >> 8);
                    let got = tree.update(&key, &v).unwrap();
                    let expect = model.contains_key(&mk);
                    assert_eq!(got, expect, "[{}] update {key} at step {step}", tree.name());
                    if expect {
                        model.insert(mk, v);
                    }
                }
                6..=7 => {
                    let got = tree.remove(&key).unwrap();
                    let expect = model.remove(&mk).is_some();
                    assert_eq!(got, expect, "[{}] remove {key} at step {step}", tree.name());
                }
                _ => {
                    let got = tree.search(&key).unwrap();
                    assert_eq!(
                        got.as_ref(),
                        model.get(&mk),
                        "[{}] search {key} at step {step}",
                        tree.name()
                    );
                }
            }
            assert_eq!(
                tree.len(),
                model.len(),
                "[{}] len at step {step}",
                tree.name()
            );
        }
        // Full final verification.
        for (k, v) in &model {
            let key = Key::new(k).unwrap();
            assert_eq!(
                tree.search(&key).unwrap().as_ref(),
                Some(v),
                "[{}]",
                tree.name()
            );
        }
    }
}

#[test]
fn range_agrees_with_model_on_every_tree() {
    for tree in all_trees(PoolConfig {
        size_bytes: 64 << 20,
        ..PoolConfig::test_small()
    }) {
        let mut model: BTreeMap<Vec<u8>, Value> = BTreeMap::new();
        let mut rng = Rng(7);
        for _ in 0..3000 {
            let r = rng.next();
            let key = key_from(r, 100_000);
            let v = value_from(r >> 5);
            tree.insert(&key, &v).unwrap();
            model.insert(key.as_slice().to_vec(), v);
        }
        for (lo, hi) in [("1", "8"), ("A", "Z"), ("B2", "Tz"), ("0", "zzzzzzzzzzzz")] {
            let lo = Key::from_str(lo).unwrap();
            let hi = Key::from_str(hi).unwrap();
            let got: Vec<(Vec<u8>, Value)> = tree
                .range(&lo, &hi)
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.as_slice().to_vec(), v))
                .collect();
            let expect: Vec<(Vec<u8>, Value)> = model
                .range(lo.as_slice().to_vec()..=hi.as_slice().to_vec())
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expect, "[{}] range {lo}..{hi}", tree.name());
        }
    }
}

#[test]
fn multi_get_agrees_across_trees() {
    let trees = all_trees(PoolConfig::test_small());
    let keys: Vec<Key> = (0..500).map(|i| Key::from_u64_base62(i * 3, 6)).collect();
    let probes: Vec<Key> = (0..1500).map(|i| Key::from_u64_base62(i, 6)).collect();
    for tree in &trees {
        for k in &keys {
            tree.insert(k, &Value::from_u64(k.as_slice()[0] as u64))
                .unwrap();
        }
    }
    let answers: Vec<Vec<Option<Value>>> = trees
        .iter()
        .map(|t| t.multi_get(&probes).unwrap())
        .collect();
    for w in answers.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    assert_eq!(answers[0].iter().filter(|o| o.is_some()).count(), 500);
}
