//! Fingerprint-probe equivalence battery (DESIGN.md §Resizing).
//!
//! The directory's fingerprint filter and stash region change only *how*
//! bucket probes run, never what they find. This suite proves it from the
//! outside: two trees with identical configs except
//! `HartConfig::full_key_probes` are driven through the same seeded
//! workload — inserts, updates, removes, point lookups and ordered scans,
//! across forced directory doublings — and every observable answer must
//! match exactly. A second battery checks the new observability counters
//! actually account for the probes.
//!
//! Run with `HART_FORCE_SCALAR=1` to pin the fingerprint scan to the
//! scalar fallback (the CI fingerprint-suite job does both); the SIMD and
//! scalar paths are separately proven bit-identical in `hart-art`'s simd
//! tests.

use hart_suite::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use std::sync::Arc;

fn build(cfg: HartConfig) -> Arc<Hart> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 128 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    Arc::new(Hart::create(pool, cfg).unwrap())
}

/// Tiny deterministic PRNG (same idiom as `tests/resize.rs`).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

const N_PREFIXES: u64 = 192;
const KEYS_PER_PREFIX: u64 = 4;
const N_KEYS: u64 = N_PREFIXES * KEYS_PER_PREFIX;

fn key_of(kid: u64) -> Key {
    let p = kid / KEYS_PER_PREFIX;
    let a = (b'A' + (p / 26) as u8) as char;
    let b = (b'A' + (p % 26) as u8) as char;
    Key::from_str(&format!("{a}{b}{:03}", kid % KEYS_PER_PREFIX)).unwrap()
}

fn value_of(x: u64) -> Value {
    Value::new(&x.to_le_bytes()).unwrap()
}

/// Drive `h` through one seeded op mix; return a digest of every
/// observable answer so two runs can be compared wholesale.
fn drive(h: &Hart, seed: u64) -> Vec<u64> {
    let mut rng = XorShift(seed);
    let mut digest = Vec::new();
    for round in 0..4 {
        // Insert/update/remove churn.
        for _ in 0..N_KEYS {
            let kid = rng.next() % N_KEYS;
            let k = key_of(kid);
            match rng.next() % 4 {
                0 => {
                    let removed = h.remove(&k).unwrap();
                    digest.push(removed as u64);
                }
                _ => {
                    h.insert(&k, &value_of(kid * 31 + round)).unwrap();
                    digest.push(u64::MAX);
                }
            }
        }
        // Every key probed, hit or miss.
        for kid in 0..N_KEYS {
            match h.search(&key_of(kid)).unwrap() {
                Some(v) => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&v.as_slice()[..8]);
                    digest.push(u64::from_le_bytes(b));
                }
                None => digest.push(0),
            }
        }
        // Ordered scans cross every shard the directory knows about.
        let lo = key_of(rng.next() % N_KEYS);
        let hi = key_of(rng.next() % N_KEYS);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        for (k, v) in h.ordered_range(&lo, &hi).unwrap() {
            digest.push(k.as_slice().iter().map(|&b| b as u64).sum());
            let mut b = [0u8; 8];
            b.copy_from_slice(&v.as_slice()[..8]);
            digest.push(u64::from_le_bytes(b));
        }
    }
    digest
}

/// The tentpole equivalence proof: fingerprint probes on vs the
/// `full_key_probes` kill-switch, identical op stream, identical answers
/// — while the 8-bucket directory is forced through several doublings, so
/// the equivalence covers migration, stash drains and both probe paths.
#[test]
fn kill_switch_equivalence_across_resizes() {
    let base = HartConfig {
        initial_buckets: 8,
        resize_threshold: 1,
        ..HartConfig::default()
    };
    let fp = build(base);
    let full = build(HartConfig {
        full_key_probes: true,
        ..base
    });
    assert!(!fp.config().full_key_probes);
    assert!(full.config().full_key_probes);
    for seed in 1..=3u64 {
        assert_eq!(
            drive(&fp, seed),
            drive(&full, seed),
            "fingerprint and full-key probes diverged (seed {seed})"
        );
    }
    assert!(fp.hash_resize_count() >= 4, "battery must force doublings");
    assert_eq!(fp.hash_resize_count(), full.hash_resize_count());
    assert_eq!(fp.art_count(), full.art_count());
    assert_eq!(fp.hash_bucket_count(), full.hash_bucket_count());
}

/// Same proof under the locked-reads ablation (no EBR, graveyard
/// retirement): the probe strategy must be orthogonal to the read path.
#[test]
fn kill_switch_equivalence_with_locked_reads() {
    let base = HartConfig {
        initial_buckets: 8,
        resize_threshold: 1,
        ..HartConfig::with_locked_reads()
    };
    let fp = build(base);
    let full = build(HartConfig {
        full_key_probes: true,
        ..base
    });
    assert_eq!(
        drive(&fp, 7),
        drive(&full, 7),
        "probe strategies diverged under locked reads"
    );
    assert!(fp.hash_resize_count() >= 4);
}

/// The fingerprint counters must account for real probe work: hits at
/// least one per successful lookup, and stash probes appearing once
/// chains are forced past the home-bucket cap.
#[test]
fn fingerprint_counters_account_for_probes() {
    // 2 buckets, resizing off: every prefix chains into two home buckets,
    // far past the cap, so the stash must absorb the tail.
    let h = build(HartConfig {
        initial_buckets: 2,
        resize_threshold: 0,
        ..HartConfig::default()
    });
    for kid in 0..N_KEYS {
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
    }
    for kid in 0..N_KEYS {
        assert!(h.search(&key_of(kid)).unwrap().is_some());
    }
    let snap = h.obs_snapshot();
    assert!(
        snap.dir.fp_hits >= N_KEYS,
        "every successful probe ends in a fingerprint hit (got {})",
        snap.dir.fp_hits
    );
    assert!(
        snap.dir.stash_spills > 0,
        "192 prefixes over 2 capped buckets must spill"
    );
    assert!(
        snap.dir.stash_probes > 0,
        "displaced keys must be found via stash probes"
    );
    // False positives are possible but bounded: each is one wasted key
    // compare, and the filter would be pointless if they dominated hits.
    assert!(
        snap.dir.fp_false_positives < snap.dir.fp_hits,
        "false positives ({}) should not dominate hits ({})",
        snap.dir.fp_false_positives,
        snap.dir.fp_hits
    );
}

/// With the kill-switch on, the fingerprint counters stay silent — the
/// filter is really bypassed, not just ignored.
#[test]
fn kill_switch_silences_fingerprint_counters() {
    let h = build(HartConfig {
        initial_buckets: 2,
        resize_threshold: 0,
        ..HartConfig::with_full_key_probes()
    });
    for kid in 0..256 {
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
        assert!(h.search(&key_of(kid)).unwrap().is_some());
    }
    let snap = h.obs_snapshot();
    assert_eq!(snap.dir.fp_hits, 0, "kill-switch must bypass the filter");
    assert_eq!(snap.dir.fp_false_positives, 0);
}
