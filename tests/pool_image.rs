//! Pool-image integration: a HART saved to an image file and loaded in a
//! "new process" (fresh pool object) must recover byte-for-byte, fsck
//! clean, across clean shutdowns, crashes and multiple generations —
//! the full durability story the `hart-cli` tool relies on.

use hart_suite::workloads::{random, value_for};
use hart_suite::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hart-suite-image-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn small_cfg() -> PoolConfig {
    PoolConfig {
        size_bytes: 32 << 20,
        ..PoolConfig::test_small()
    }
}

#[test]
fn clean_shutdown_roundtrip() {
    let path = tmp("clean.img");
    let keys = random(3000, 17);
    {
        let pool = Arc::new(PmemPool::new(small_cfg()));
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for k in &keys {
            h.insert(k, &value_for(k)).unwrap();
        }
        for k in keys.iter().step_by(3) {
            h.remove(k).unwrap();
        }
        drop(h);
        pool.save_image(&path).unwrap();
    }
    // "New process": nothing shared but the file.
    let pool = Arc::new(PmemPool::load_image(&path, small_cfg()).unwrap());
    let h = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
    h.check_consistency().unwrap();
    assert!(h.epallocator().verify().is_healthy());
    for (i, k) in keys.iter().enumerate() {
        let got = h.search(k).unwrap();
        if i % 3 == 0 {
            assert_eq!(got, None);
        } else {
            assert_eq!(got.unwrap(), value_for(k));
        }
    }
}

#[test]
fn crashed_image_recovers_and_fscks_clean() {
    let path = tmp("crashed.img");
    let keys = random(500, 5);
    {
        let pool = Arc::new(PmemPool::new(PoolConfig {
            size_bytes: 32 << 20,
            crash_sim: true,
            ..PoolConfig::test_small()
        }));
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for k in &keys {
            h.insert(k, &value_for(k)).unwrap();
        }
        // Die mid-insert: the fuse lets a couple of persists through.
        pool.arm_persist_fuse(2);
        h.insert(&Key::from_str("torn-key").unwrap(), &Value::from_u64(1))
            .unwrap();
        drop(h);
        // A crash-sim pool's image IS the durable (shadow) state — no
        // simulate_crash() needed before saving.
        pool.save_image(&path).unwrap();
    }
    let pool = Arc::new(PmemPool::load_image(&path, small_cfg()).unwrap());
    let h = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
    h.check_consistency().unwrap();
    let rep = h.epallocator().verify();
    assert!(rep.is_healthy(), "post-crash image must fsck clean: {rep}");
    assert_eq!(
        h.len(),
        keys.len(),
        "torn insert lost, everything else kept"
    );
    for k in keys.iter().step_by(41) {
        assert_eq!(h.search(k).unwrap().unwrap(), value_for(k));
    }
}

#[test]
fn many_generations_through_files() {
    let path = tmp("generations.img");
    {
        let pool = Arc::new(PmemPool::new(small_cfg()));
        drop(Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap());
        pool.save_image(&path).unwrap();
    }
    // Five open→mutate→save cycles.
    for generation in 0u64..5 {
        let pool = Arc::new(PmemPool::load_image(&path, small_cfg()).unwrap());
        let h = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        assert_eq!(
            h.len() as u64,
            generation * 100,
            "start of gen {generation}"
        );
        for i in 0..100u64 {
            let key = Key::from_u64_base62(generation * 100 + i, 8);
            h.insert(&key, &Value::from_u64(generation)).unwrap();
        }
        h.check_consistency().unwrap();
        drop(h);
        pool.save_image(&path).unwrap();
    }
    let pool = Arc::new(PmemPool::load_image(&path, small_cfg()).unwrap());
    let h = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
    assert_eq!(h.len(), 500);
    for g in 0u64..5 {
        let probe = Key::from_u64_base62(g * 100 + 50, 8);
        assert_eq!(h.search(&probe).unwrap().unwrap().as_u64(), g);
    }
    assert!(h.epallocator().verify().is_healthy());
}

#[test]
fn image_is_stable_across_noop_cycles() {
    // Load→save without mutations must converge (same bytes after the
    // first normalization cycle) — guards against recovery writing
    // nondeterministic junk into the image.
    let path1 = tmp("noop1.img");
    let path2 = tmp("noop2.img");
    {
        let pool = Arc::new(PmemPool::new(small_cfg()));
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..200u64 {
            h.insert(&Key::from_u64_base62(i, 6), &Value::from_u64(i))
                .unwrap();
        }
        drop(h);
        pool.save_image(&path1).unwrap();
    }
    {
        let pool = Arc::new(PmemPool::load_image(&path1, small_cfg()).unwrap());
        let h = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        drop(h);
        pool.save_image(&path2).unwrap();
    }
    let a = std::fs::read(&path1).unwrap();
    let b = std::fs::read(&path2).unwrap();
    assert_eq!(a, b, "no-op recover+save must not mutate the image");
}

#[test]
fn woart_and_fptree_images_roundtrip_too() {
    use hart_suite::{FpTree, Woart};
    let keys = random(800, 9);

    let path = tmp("woart.img");
    {
        let pool = Arc::new(PmemPool::new(small_cfg()));
        let t = Woart::create(Arc::clone(&pool)).unwrap();
        for k in &keys {
            t.insert(k, &value_for(k)).unwrap();
        }
        drop(t);
        pool.save_image(&path).unwrap();
    }
    let pool = Arc::new(PmemPool::load_image(&path, small_cfg()).unwrap());
    let t = Woart::open(pool).unwrap();
    assert_eq!(t.len(), 800);
    assert_eq!(t.search(&keys[13]).unwrap().unwrap(), value_for(&keys[13]));

    let path = tmp("fptree.img");
    {
        let pool = Arc::new(PmemPool::new(small_cfg()));
        let t = FpTree::create(Arc::clone(&pool)).unwrap();
        for k in &keys {
            t.insert(k, &value_for(k)).unwrap();
        }
        drop(t);
        pool.save_image(&path).unwrap();
    }
    let pool = Arc::new(PmemPool::load_image(&path, small_cfg()).unwrap());
    let t = FpTree::recover(pool).unwrap();
    assert_eq!(t.len(), 800);
    assert_eq!(t.search(&keys[13]).unwrap().unwrap(), value_for(&keys[13]));
}
