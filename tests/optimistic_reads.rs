//! Stress battery for the version-validated lock-free read path
//! (DESIGN.md §Concurrency).
//!
//! The oracle-shadow test keeps a committed-value history per key in plain
//! DRAM (the "oracle"): writers record a value in the history *before*
//! making it reachable, so any value a reader can legitimately return is in
//! the set. A torn read — bytes mixing two committed values, or bytes from
//! a recycled chunk — fails both the structural check (mirrored halves)
//! and the membership check.
//!
//! Iteration counts scale with the `HART_STRESS_MULT` env var (the nightly
//! CI stress job sets 4).

use hart_suite::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn build(cfg: HartConfig) -> Arc<Hart> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 128 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    Arc::new(Hart::create(pool, cfg).unwrap())
}

fn stress_mult() -> u64 {
    std::env::var("HART_STRESS_MULT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Tiny deterministic PRNG so each thread gets an independent, repeatable
/// op stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

const PREFIXES: [&str; 4] = ["AA", "AB", "AC", "AD"];
const KEYS_PER_PREFIX: u64 = 64;
const N_KEYS: u64 = PREFIXES.len() as u64 * KEYS_PER_PREFIX;

fn key_of(kid: u64) -> Key {
    let p = PREFIXES[(kid / KEYS_PER_PREFIX) as usize];
    let i = kid % KEYS_PER_PREFIX;
    Key::from_str(&format!("{p}{i:03}")).unwrap()
}

/// 16-byte value: the 8-byte payload mirrored. A copy assembled from two
/// different committed values (or from freed bytes) breaks the mirror with
/// overwhelming probability, independently of the oracle check.
fn value_of(x: u64) -> Value {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&x.to_le_bytes());
    b[8..].copy_from_slice(&x.to_le_bytes());
    Value::new(&b).unwrap()
}

fn decode(v: &Value) -> Option<u64> {
    let s = v.as_slice();
    if s.len() != 16 || s[..8] != s[8..] {
        return None;
    }
    Some(u64::from_le_bytes(s[..8].try_into().unwrap()))
}

/// Tentpole battery: 8 writers and 8 readers hammering 4 shards (256 keys
/// under 4 overlapping hash prefixes). Every value a reader returns must
/// decode cleanly and appear in that key's committed-value history.
#[test]
fn oracle_shadow_stress() {
    let h = build(HartConfig::default());
    let history: Vec<Mutex<HashSet<u64>>> =
        (0..N_KEYS).map(|_| Mutex::new(HashSet::new())).collect();
    // Preload half the keys so readers hit from the start.
    for kid in (0..N_KEYS).step_by(2) {
        history[kid as usize].lock().unwrap().insert(kid);
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
    }
    let iters = 4_000 * stress_mult();
    let done = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let h = Arc::clone(&h);
            let history = &history;
            let done = &done;
            let torn = &torn;
            let hits = &hits;
            s.spawn(move || {
                let mut rng = XorShift(0xDEAD_BEEF ^ (t + 1));
                while !done.load(Ordering::Relaxed) {
                    let kid = rng.next() % N_KEYS;
                    match h.search(&key_of(kid)).unwrap() {
                        None => {} // absent is always a legal outcome
                        Some(v) => {
                            hits.fetch_add(1, Ordering::Relaxed);
                            let ok = match decode(&v) {
                                None => false, // structurally torn
                                Some(x) => history[kid as usize].lock().unwrap().contains(&x),
                            };
                            if !ok {
                                eprintln!("torn read on key {kid}: {:?}", v.as_slice());
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        let writers: Vec<_> = (0..8u64)
            .map(|t| {
                let h = Arc::clone(&h);
                let history = &history;
                s.spawn(move || {
                    let mut rng = XorShift(0x9E37_79B9 ^ (t + 1));
                    for seq in 0..iters {
                        let kid = rng.next() % N_KEYS;
                        let key = key_of(kid);
                        match rng.next() % 5 {
                            // 3/5 insert-or-update, 1/5 remove, 1/5 read.
                            0..=2 => {
                                let x = (t << 48) | seq;
                                // Publish to the oracle BEFORE the value
                                // can become reachable.
                                history[kid as usize].lock().unwrap().insert(x);
                                h.insert(&key, &value_of(x)).unwrap();
                            }
                            3 => {
                                let _ = h.remove(&key).unwrap();
                            }
                            _ => {
                                let _ = h.search(&key).unwrap();
                            }
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "validated reads must never tear"
    );
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "readers must observe data"
    );
    h.check_consistency().unwrap();
}

/// Shard-unlink race: every remove of the last key in a shard unlinks the
/// whole ART from the directory while lock-free readers are mid-descent in
/// it. Readers must keep returning committed-or-absent, and the shard
/// memory must stay dereferenceable until their epochs are released.
#[test]
fn shard_unlink_race_with_readers() {
    let h = build(HartConfig::default());
    let rounds = 1_500 * stress_mult();
    let done = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            let done = &done;
            let torn = &torn;
            s.spawn(move || {
                let mut rng = XorShift(0xC0FF_EE00 ^ (t + 1));
                while !done.load(Ordering::Relaxed) {
                    // Single-key shards: "QQ0".."QQ3" each live alone in
                    // their hash prefix's ART.
                    let key = Key::from_str(&format!("QQ{}", rng.next() % 4)).unwrap();
                    match h.search(&key).unwrap() {
                        Some(v) if decode(&v).is_none() => {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                }
            });
        }
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    let key = Key::from_str(&format!("QQ{t}")).unwrap();
                    for round in 0..rounds {
                        h.insert(&key, &value_of(round)).unwrap();
                        assert!(h.search(&key).unwrap().is_some(), "own insert visible");
                        h.remove(&key).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(torn.load(Ordering::Relaxed), 0);
    assert_eq!(h.len(), 0);
    assert_eq!(h.art_count(), 0, "all shards unlinked at the end");
    h.check_consistency().unwrap();
}

/// Ranges under concurrent writers: each returned batch must be sorted and
/// structurally clean (no torn values), whether it came from a validated
/// optimistic snapshot or the per-shard locked fallback.
#[test]
fn range_scans_during_writes_are_clean() {
    let h = build(HartConfig::default());
    for kid in 0..N_KEYS {
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
    }
    let lo = Key::from_str("AA").unwrap();
    let hi = Key::from_str("AE").unwrap();
    let done = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            let done = &done;
            let torn = &torn;
            s.spawn(move || {
                let _ = t;
                while !done.load(Ordering::Relaxed) {
                    let rows = h.range(&lo, &hi).unwrap();
                    let mut prev: Option<Key> = None;
                    for (k, v) in rows {
                        if decode(&v).is_none() {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(p) = &prev {
                            assert!(*p < k, "range output must stay sorted");
                        }
                        prev = Some(k);
                    }
                }
            });
        }
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    let mut rng = XorShift(0xFACE_FEED ^ (t + 1));
                    for seq in 0..(2_000 * stress_mult()) {
                        let kid = rng.next() % N_KEYS;
                        if rng.next().is_multiple_of(4) {
                            let _ = h.remove(&key_of(kid)).unwrap();
                        } else {
                            h.insert(&key_of(kid), &value_of((t << 48) | seq)).unwrap();
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(torn.load(Ordering::Relaxed), 0);
    h.check_consistency().unwrap();
}

/// Kill-switch equivalence: the same deterministic op sequence must leave
/// identical visible state whether reads are optimistic or locked, and the
/// locked configuration must still survive the concurrent battery.
#[test]
fn kill_switch_reproduces_locked_behavior() {
    let opt = build(HartConfig::default());
    let locked = build(HartConfig::with_locked_reads());
    let mut rng = XorShift(0x5EED_5EED);
    for seq in 0..6_000u64 {
        let kid = rng.next() % N_KEYS;
        let key = key_of(kid);
        match rng.next() % 4 {
            0..=1 => {
                for h in [&opt, &locked] {
                    h.insert(&key, &value_of(seq)).unwrap();
                }
            }
            2 => {
                let a = opt.remove(&key).unwrap();
                let b = locked.remove(&key).unwrap();
                assert_eq!(a, b, "remove outcome diverged at seq {seq}");
            }
            _ => {
                let a = opt.search(&key).unwrap();
                let b = locked.search(&key).unwrap();
                assert_eq!(a, b, "search diverged at seq {seq}");
            }
        }
    }
    assert_eq!(opt.len(), locked.len());
    assert_eq!(opt.art_count(), locked.art_count());
    let lo = Key::from_str("A").unwrap();
    let hi = Key::from_str("zzzz").unwrap();
    assert_eq!(
        opt.range(&lo, &hi).unwrap(),
        locked.range(&lo, &hi).unwrap()
    );
    opt.check_consistency().unwrap();
    locked.check_consistency().unwrap();

    // The locked config under the same concurrent pattern as the battery.
    let torn = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let h = Arc::clone(&locked);
            let torn = &torn;
            s.spawn(move || {
                let mut rng = XorShift(0xBAD_CAFE ^ (t + 1));
                for seq in 0..(1_000 * stress_mult()) {
                    let kid = rng.next() % N_KEYS;
                    let key = key_of(kid);
                    match rng.next() % 3 {
                        0 => h.insert(&key, &value_of((t << 48) | seq)).unwrap(),
                        1 => {
                            let _ = h.remove(&key).unwrap();
                        }
                        _ => {
                            if let Some(v) = h.search(&key).unwrap() {
                                if decode(&v).is_none() {
                                    torn.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    assert_eq!(torn.load(Ordering::Relaxed), 0);
    locked.check_consistency().unwrap();
}
