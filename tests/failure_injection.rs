//! Systematic failure injection: crash HART (and FPTree) at *every*
//! internal persist point of its operations and verify the recovery
//! invariants the paper argues in §III-B.
//!
//! Mechanism: the PM pool's *persist fuse* lets the first `F` persists
//! succeed and silently drops durability afterwards; `simulate_crash`
//! then reverts to exactly the state a power failure at that persist
//! boundary would leave. Sweeping `F` across an operation window crashes
//! inside every window of Algorithms 1, 3, 5 and 6.
//!
//! Invariants checked after each recovery:
//! * **atomicity** — each key holds a value the operation history allows
//!   (old or new, present or absent for the in-flight op);
//! * **prefix durability** — a single-threaded history is durable in
//!   order: if op *i* survived, all earlier ops did too;
//! * **no leaks** — live value objects == live leaves (every committed
//!   value is owned by exactly one committed leaf);
//! * structural consistency (`check_consistency`).

use hart_suite::{
    Hart, HartConfig, Key, LatencyConfig, PersistentIndex, PmemPool, PoolConfig, Value,
};
use std::sync::Arc;

fn crash_pool(bytes: usize) -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PoolConfig {
        size_bytes: bytes,
        latency: LatencyConfig::dram(),
        crash_sim: true,
        alloc_overhead_ns: 0,
        ..PoolConfig::default()
    }))
}

fn k(i: u64) -> Key {
    Key::from_u64_base62(i, 6)
}

/// Shared post-recovery invariant: value objects never leak.
fn assert_no_leaks(h: &Hart) {
    let s = h.alloc_stats();
    assert_eq!(
        s.live[1] + s.live[2],
        s.live[0],
        "value objects must match leaves exactly (no leaks, no loss): {s:?}"
    );
    h.check_consistency().expect("structural consistency");
}

/// Shared post-recovery invariant (DESIGN.md §Scans): the ordered scan and
/// point search agree exactly on the recovered state. The full-range scan
/// must be strictly key-ordered, return one row per live record, and every
/// row must read back identically through `search` — whatever crash point
/// produced this state.
fn assert_scan_agrees_with_search(t: &dyn PersistentIndex) {
    let lo = Key::new(&[0x01]).unwrap();
    let hi = Key::new(&[0xFF; hart_suite::kv::MAX_KEY_LEN]).unwrap();
    let rows = t.scan(&lo, &hi, usize::MAX).unwrap();
    assert!(
        rows.windows(2).all(|w| w[0].0 < w[1].0),
        "recovered scan has a duplicated or out-of-order key"
    );
    assert_eq!(
        rows.len(),
        t.len(),
        "recovered scan must see exactly the live records"
    );
    for (key, val) in &rows {
        assert_eq!(
            t.search(key).unwrap().as_ref(),
            Some(val),
            "scan row for {key} disagrees with point search after recovery"
        );
    }
}

#[test]
fn insert_crashes_at_every_persist_point() {
    const BASE: u64 = 50; // records inserted before arming the fuse
    const WINDOW: u64 = 12; // records inserted across the crash window
                            // An insert issues a handful of persists; sweeping 0..40 fuse steps
                            // crosses several complete inserts and every internal boundary.
    for fuse in 0..40u64 {
        let pool = crash_pool(16 << 20);
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..BASE {
            h.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in BASE..BASE + WINDOW {
            h.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        // Prefix durability: surviving keys must be exactly BASE..BASE+m
        // for some m (single-threaded inserts complete in order).
        let mut survived = 0;
        let mut ended = false;
        for i in BASE..BASE + WINDOW {
            let got = r.search(&k(i)).unwrap();
            match got {
                Some(v) => {
                    assert!(!ended, "fuse={fuse}: key {i} survived after a lost key");
                    assert_eq!(v.as_u64(), i);
                    survived += 1;
                }
                None => ended = true,
            }
        }
        assert_eq!(r.len() as u64, BASE + survived, "fuse={fuse}");
        for i in 0..BASE {
            assert_eq!(
                r.search(&k(i)).unwrap().unwrap().as_u64(),
                i,
                "fuse={fuse}: base key"
            );
        }
        assert_no_leaks(&r);
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn update_crashes_at_every_persist_point() {
    const N: u64 = 30;
    for fuse in 0..40u64 {
        let pool = crash_pool(16 << 20);
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..N {
            h.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in 0..N {
            // Alternate value classes so class transitions crash too.
            let new = if i % 2 == 0 {
                Value::from_u64(1000 + i)
            } else {
                Value::new(&[i as u8; 16]).unwrap()
            };
            assert!(h.update(&k(i), &new).unwrap());
        }
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        assert_eq!(
            r.len() as u64,
            N,
            "fuse={fuse}: updates never change cardinality"
        );
        for i in 0..N {
            let got = r.search(&k(i)).unwrap().expect("key present");
            let old_ok = got.as_u64() == i && got.len() == 8;
            let new_ok = if i % 2 == 0 {
                got.as_u64() == 1000 + i
            } else {
                got.as_slice() == [i as u8; 16]
            };
            assert!(
                old_ok || new_ok,
                "fuse={fuse}: key {i} holds neither old nor new value: {got:?}"
            );
        }
        assert_no_leaks(&r);
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn delete_crashes_at_every_persist_point() {
    const N: u64 = 30;
    for fuse in 0..40u64 {
        let pool = crash_pool(16 << 20);
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..N {
            h.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in 0..N {
            assert!(h.remove(&k(i)).unwrap());
        }
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        // Deletions are durable in order: survivors form a suffix, with at
        // most one in-flight deletion boundary.
        let mut gone = 0;
        let mut seen_survivor = false;
        for i in 0..N {
            match r.search(&k(i)).unwrap() {
                None => {
                    assert!(
                        !seen_survivor,
                        "fuse={fuse}: key {i} deleted after an undeleted key"
                    );
                    gone += 1;
                }
                Some(v) => {
                    assert_eq!(v.as_u64(), i);
                    seen_survivor = true;
                }
            }
        }
        assert_eq!(r.len() as u64, N - gone, "fuse={fuse}");
        assert_no_leaks(&r);
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn mixed_ops_crash_then_recover_consistently() {
    // A denser mixed history with the fuse landing wherever it lands; the
    // check is pure invariants (no per-op oracle).
    for fuse in (0..120u64).step_by(7) {
        let pool = crash_pool(16 << 20);
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..40 {
            h.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in 0..40u64 {
            match i % 4 {
                0 => {
                    h.insert(&k(100 + i), &Value::from_u64(i)).unwrap();
                }
                1 => {
                    h.update(&k(i), &Value::from_u64(7000 + i)).unwrap();
                }
                2 => {
                    h.remove(&k(i)).unwrap();
                }
                _ => {
                    let _ = h.search(&k(i)).unwrap();
                }
            }
        }
        drop(h);
        pool.simulate_crash();
        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        assert_no_leaks(&r);
        // Whatever survived must be readable and re-writable.
        for i in 0..40 {
            let _ = r.search(&k(i)).unwrap();
        }
        r.insert(&k(999), &Value::from_u64(999)).unwrap();
        assert_eq!(r.search(&k(999)).unwrap().unwrap().as_u64(), 999);
        assert_no_leaks(&r);
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn fptree_insert_crashes_at_every_persist_point() {
    use hart_suite::FpTree;
    const BASE: u64 = 40;
    const WINDOW: u64 = 40; // crosses a leaf split (LEAF_CAP = 32)
    for fuse in 0..50u64 {
        let pool = crash_pool(16 << 20);
        let t = FpTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..BASE {
            t.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in BASE..BASE + WINDOW {
            t.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        drop(t);
        pool.simulate_crash();

        let r = FpTree::recover(Arc::clone(&pool)).unwrap();
        let mut survived = 0;
        let mut ended = false;
        for i in BASE..BASE + WINDOW {
            match r.search(&k(i)).unwrap() {
                Some(v) => {
                    assert!(!ended, "fuse={fuse}: gap in durable prefix at {i}");
                    assert_eq!(v.as_u64(), i);
                    survived += 1;
                }
                None => ended = true,
            }
        }
        assert_eq!(r.len() as u64, BASE + survived, "fuse={fuse}");
        for i in 0..BASE {
            assert_eq!(r.search(&k(i)).unwrap().unwrap().as_u64(), i, "fuse={fuse}");
        }
        // Post-recovery the tree keeps working.
        r.insert(&k(9999), &Value::from_u64(1)).unwrap();
        assert!(r.search(&k(9999)).unwrap().is_some());
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn fptree_update_crashes_keep_old_or_new() {
    use hart_suite::FpTree;
    const N: u64 = 30;
    for fuse in 0..30u64 {
        let pool = crash_pool(16 << 20);
        let t = FpTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..N {
            t.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in 0..N {
            assert!(t.update(&k(i), &Value::from_u64(5000 + i)).unwrap());
        }
        drop(t);
        pool.simulate_crash();
        let r = FpTree::recover(Arc::clone(&pool)).unwrap();
        assert_eq!(r.len() as u64, N, "fuse={fuse}");
        for i in 0..N {
            let got = r.search(&k(i)).unwrap().expect("present").as_u64();
            assert!(
                got == i || got == 5000 + i,
                "fuse={fuse}: key {i} holds neither old nor new: {got}"
            );
        }
        // The recovered tree keeps working.
        r.insert(&k(777_777), &Value::from_u64(1)).unwrap();
        assert!(r.search(&k(777_777)).unwrap().is_some());
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn fptree_delete_crashes_are_atomic() {
    use hart_suite::FpTree;
    const N: u64 = 40; // crosses an empty-leaf unlink (LEAF_CAP = 32)
    for fuse in 0..30u64 {
        let pool = crash_pool(16 << 20);
        let t = FpTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..N {
            t.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in 0..N {
            assert!(t.remove(&k(i)).unwrap());
        }
        drop(t);
        pool.simulate_crash();
        let r = FpTree::recover(Arc::clone(&pool)).unwrap();
        // Deleted prefix, surviving suffix.
        let mut seen_survivor = false;
        let mut survivors = 0u64;
        for i in 0..N {
            match r.search(&k(i)).unwrap() {
                None => assert!(!seen_survivor, "fuse={fuse}: gap at key {i}"),
                Some(v) => {
                    assert_eq!(v.as_u64(), i, "fuse={fuse}");
                    seen_survivor = true;
                    survivors += 1;
                }
            }
        }
        assert_eq!(r.len() as u64, survivors, "fuse={fuse}");
        assert_scan_agrees_with_search(&r);
    }
}

/// Algorithm 1's write ordering has six distinct crash points (§III-B):
/// after the value bytes (line 12), after `leaf.p_value` (line 13), after
/// the value bit (line 14), after the key + key length (lines 15–16),
/// after the volatile DRAM link (line 17), and after the leaf bit
/// (line 18). Only the last makes the insert durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[allow(clippy::enum_variant_names)] // the shared "After" prefix mirrors Algorithm 1's line numbering
enum InsertCrashPoint {
    AfterValueWrite,
    AfterPValue,
    AfterValueBit,
    AfterKeyWrite,
    AfterDramLink,
    AfterLeafBit,
}

#[test]
fn insert_crash_matrix_covers_all_six_ordering_points() {
    use hart_suite::epalloc::{
        leaf_write_key, leaf_write_pvalue, persist_leaf_key, persist_leaf_pvalue, ObjClass,
    };
    use InsertCrashPoint::*;

    let base = Key::from_str("AAkeep").unwrap();
    let lost = Key::from_str("AAlost").unwrap();
    for point in [
        AfterValueWrite,
        AfterPValue,
        AfterValueBit,
        AfterKeyWrite,
        AfterDramLink,
        AfterLeafBit,
    ] {
        let pool = crash_pool(16 << 20);
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        h.insert(&base, &Value::from_u64(1)).unwrap();

        // Replay Algorithm 1 lines 10–18 by hand, stopping at `point`.
        let al = h.epallocator();
        let leaf = al.alloc(ObjClass::Leaf).unwrap();
        let vptr = al.alloc(ObjClass::Value8).unwrap();
        pool.write(vptr, &99u64); // line 12: value = V
        pool.persist_val::<u64>(vptr);
        if point >= AfterPValue {
            leaf_write_pvalue(&pool, leaf, vptr, 8); // line 13
            persist_leaf_pvalue(&pool, leaf);
        }
        if point >= AfterValueBit {
            al.commit(vptr, ObjClass::Value8); // line 14
        }
        if point >= AfterKeyWrite {
            leaf_write_key(&pool, leaf, &lost); // lines 15–16
            persist_leaf_key(&pool, leaf);
        }
        if point >= AfterDramLink {
            // Line 17 touches only DRAM: the ART link vanishes in the
            // crash regardless, so the persistent state is identical to
            // AfterKeyWrite — the matrix keeps the point to pin that down.
        }
        if point >= AfterLeafBit {
            al.commit(leaf, ObjClass::Leaf); // line 18
        }
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        let committed = point >= AfterLeafBit;
        assert_eq!(
            r.search(&base).unwrap().unwrap().as_u64(),
            1,
            "{point:?}: committed base record must survive"
        );
        match r.search(&lost).unwrap() {
            Some(v) if committed => assert_eq!(v.as_u64(), 99, "{point:?}"),
            None if !committed => {}
            other => panic!("{point:?}: expected committed-or-absent, got {other:?}"),
        }
        assert_eq!(r.len(), if committed { 2 } else { 1 }, "{point:?}");
        // No partial state may leak: every staged-but-uncommitted leaf and
        // value chunk is scrubbed by recovery.
        let s = r.alloc_stats();
        let n = if committed { 2 } else { 1 };
        assert_eq!(
            s.live,
            [n, n, 0],
            "{point:?}: exactly the committed objects survive"
        );
        assert_no_leaks(&r);
        // The key is fully usable after recovery, whatever the outcome.
        r.insert(&lost, &Value::from_u64(7)).unwrap();
        assert_eq!(r.search(&lost).unwrap().unwrap().as_u64(), 7, "{point:?}");
        assert_no_leaks(&r);
        assert_scan_agrees_with_search(&r);
    }
}

#[test]
fn hart_parallel_recovery_from_fuse_crashes() {
    // The parallel recovery path must satisfy the same invariants as the
    // sequential one at every crash point.
    for fuse in (0..60u64).step_by(5) {
        let pool = crash_pool(16 << 20);
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..60 {
            h.insert(&k(i), &Value::from_u64(i)).unwrap();
        }
        pool.arm_persist_fuse(fuse);
        for i in 0..20u64 {
            h.insert(&k(100 + i), &Value::from_u64(i)).unwrap();
            h.update(&k(i), &Value::from_u64(9000 + i)).unwrap();
            h.remove(&k(40 + i)).unwrap();
        }
        drop(h);
        pool.simulate_crash();
        let r = Hart::recover_parallel(Arc::clone(&pool), HartConfig::default(), 4).unwrap();
        assert_no_leaks(&r);
        assert_scan_agrees_with_search(&r);
    }
}
