//! Group-commit durability contract, end to end through the server
//! (DESIGN.md §Server), under the PM pool's persist-fuse failure model:
//! once the fuse blows the simulated machine is *already dead* — later
//! persists silently stop promoting into the durable image.
//!
//! What that means per path:
//!
//! * **Group commit** — the batch flush *inspects* the fuse per range, so
//!   the committer learns of the death and refuses to ack anything at or
//!   after the first failed flush. The testable contract is strict:
//!   every `ST_OK` write is in the recovered state, and acks form a
//!   prefix of submission order.
//! * **Kill-switch (per-op)** — the op's own persists silently no-op
//!   after the blow, so post-death acks still stream out; on real
//!   hardware neither the persist *nor the ack* would survive the power
//!   cut, so those acks are artifacts of the simulation, not a
//!   durability-contract violation. The testable contract is the one
//!   `tests/failure_injection.rs` checks: the recovered state is a
//!   durable *prefix* of the submission order.
//!
//! Equivalence is proven by holding both paths to the shared prefix
//! contract at every fuse point, plus a no-failure control where both
//! must ack and recover *everything* identically.

use hart_suite::server::client::Client;
use hart_suite::server::proto::{Request, ST_OK};
use hart_suite::server::{start, ServerConfig};
use hart_suite::{
    GroupConfig, Hart, HartConfig, Key, LatencyConfig, PersistentIndex, PmemPool, PoolConfig, Value,
};
use std::sync::Arc;
use std::time::Duration;

const OPS: u64 = 48;

fn crash_pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 16 * 1024 * 1024,
        latency: LatencyConfig::dram(),
        crash_sim: true,
        alloc_overhead_ns: 0,
        ..PoolConfig::default()
    }))
}

fn k(i: u64) -> Key {
    Key::from_u64_base62(i, 6)
}

/// Boot a 1-worker server over a crash-sim pool, arm the fuse at `fuse`
/// persists, pipeline `OPS` puts over one connection, and return which
/// ops were acked OK (in submission order). One worker + one connection
/// means submission order == commit order, so prefix contracts are
/// checkable. The pool outlives the server for crash + recovery.
fn run_acked(group_commit: bool, fuse: u64) -> (Arc<PmemPool>, Vec<bool>) {
    let pool = crash_pool();
    let hcfg = HartConfig {
        group_commit,
        ..Default::default()
    };
    let hart = Arc::new(Hart::create(pool.clone(), hcfg).unwrap());
    let handle = start(
        hart,
        ServerConfig {
            workers: 1,
            group_commit,
            group: GroupConfig {
                max_ops: 4,
                window: Duration::from_micros(100),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut c = Client::connect(handle.local_addr()).unwrap();
    // Creation itself persists; only the op stream runs on the fuse.
    pool.arm_persist_fuse(fuse);
    let ids: Vec<u64> = (0..OPS)
        .map(|i| {
            c.send(&Request::Put {
                key: k(i).as_slice().to_vec(),
                value: Value::from_u64(i).as_slice().to_vec(),
            })
            .unwrap()
        })
        .collect();
    let acked: Vec<bool> = ids
        .into_iter()
        .map(|id| c.recv_for(id).unwrap().status == ST_OK)
        .collect();
    drop(c);
    handle.shutdown();
    pool.disarm_persist_fuse();
    (pool, acked)
}

/// Crash, recover, and return which of the `OPS` keys survived — also
/// asserting any survivor carries the right value, and that the
/// recovered tree is structurally sound with no leaked value objects.
fn crash_and_recover(pool: Arc<PmemPool>, label: &str) -> Vec<bool> {
    pool.simulate_crash();
    let h = Hart::recover(pool, HartConfig::default()).expect("recover after crash");
    let recovered: Vec<bool> = (0..OPS)
        .map(|i| match h.search(&k(i)).unwrap() {
            Some(v) => {
                assert_eq!(
                    v,
                    Value::from_u64(i),
                    "{label}: op {i} recovered with the wrong value"
                );
                true
            }
            None => false,
        })
        .collect();
    h.check_consistency().expect("structural consistency");
    let s = h.alloc_stats();
    assert_eq!(
        s.live[1] + s.live[2],
        s.live[0],
        "{label}: value objects must match leaves exactly: {s:?}"
    );
    recovered
}

/// Prefix durability for a single-connection, single-worker history:
/// once one op is missing, every later op must be missing too.
fn assert_prefix(flags: &[bool], what: &str, label: &str) {
    if let Some(first_gap) = flags.iter().position(|f| !f) {
        assert!(
            flags[first_gap..].iter().all(|f| !f),
            "{label}: {what} must form a prefix of submission order: {flags:?}"
        );
    }
}

#[test]
fn fuse_blown_inside_batch_flush_never_acks_lost_writes() {
    // Small fuses crash inside the very first batch flushes; larger ones
    // land mid-run. Each fuse value is a distinct crash point in the
    // group path's persist schedule.
    for fuse in [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233] {
        let label = format!("group-commit fuse={fuse}");
        let (pool, acked) = run_acked(true, fuse);
        assert!(
            !acked[acked.len() - 1] || fuse >= OPS,
            "{label}: too large to crash inside the run — shrink sweep"
        );
        assert_prefix(&acked, "acks", &label);
        let recovered = crash_and_recover(pool, &label);
        assert_prefix(&recovered, "recovered ops", &label);
        for i in 0..OPS as usize {
            assert!(
                !acked[i] || recovered[i],
                "{label}: op {i} was acked OK but is missing after recovery"
            );
        }
    }
}

#[test]
fn kill_switch_per_op_path_honors_the_same_prefix_contract() {
    // `group_commit: false` routes every write through the classic
    // persist-per-op path. Post-death acks are simulation artifacts (see
    // module docs), but the durable image must obey the identical prefix
    // contract the group path was held to above.
    for fuse in [1, 3, 8, 21, 55, 144, 233] {
        let label = format!("per-op fuse={fuse}");
        let (pool, _acked) = run_acked(false, fuse);
        let recovered = crash_and_recover(pool, &label);
        assert_prefix(&recovered, "recovered ops", &label);
    }
}

#[test]
fn no_failure_control_both_modes_ack_and_recover_everything() {
    // Control: with a fuse the run never exhausts, both paths must ack
    // every op OK and recover every op — i.e. they are indistinguishable
    // whenever the machine survives, which is the kill-switch guarantee.
    for gc in [true, false] {
        let label = format!("control gc={gc}");
        let (pool, acked) = run_acked(gc, u64::MAX / 4);
        assert!(
            acked.iter().all(|&a| a),
            "{label}: no failure injected, every op must ack OK"
        );
        let recovered = crash_and_recover(pool, &label);
        assert!(
            recovered.iter().all(|&r| r),
            "{label}: every acked op must survive a crash after clean flush"
        );
    }
}
