//! Protocol robustness battery for `hart-server` (DESIGN.md §Server):
//! malformed and truncated frames, oversized length prefixes, partial
//! reads, mid-batch disconnects — the server must answer what it can,
//! close what it must, and never wedge or crash.

use hart_suite::server::client::{Client, Outcome};
use hart_suite::server::proto::*;
use hart_suite::server::{start, ServerConfig, ServerHandle};
use hart_suite::{Hart, HartConfig, PmemPool, PoolConfig};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn boot(group_commit: bool) -> ServerHandle {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 16 * 1024 * 1024,
        ..PoolConfig::default()
    }));
    let hcfg = HartConfig {
        group_commit,
        ..Default::default()
    };
    let hart = Arc::new(Hart::create(pool, hcfg).unwrap());
    start(
        hart,
        ServerConfig {
            workers: 2,
            group_commit,
            group: hart_suite::GroupConfig {
                max_ops: 8,
                window: Duration::from_micros(200),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Wait (bounded) until `cond` observes a true snapshot — counters are
/// updated by detached reader threads after the socket closes.
fn eventually(handle: &ServerHandle, cond: impl Fn(&hart_suite::ObsSnapshot) -> bool) -> bool {
    for _ in 0..500 {
        if cond(&handle.obs_snapshot()) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn oversized_length_prefix_gets_connection_error_and_close() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    // Announce a body far over MAX_REQUEST_BODY; never send it.
    c.send_raw(&(10 * MAX_REQUEST_BODY).to_le_bytes()).unwrap();
    let r = c.recv().unwrap();
    assert_eq!(r.req_id, 0, "connection-level error uses req_id 0");
    assert_eq!(r.status, ST_ERR);
    // The server hangs up afterwards.
    assert!(c.recv().is_err());
    assert!(eventually(&handle, |s| s.server.proto_errors == 1));
    handle.shutdown();
}

#[test]
fn impossibly_short_frame_is_rejected() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.send_raw(&3u32.to_le_bytes()).unwrap();
    let r = c.recv().unwrap();
    assert_eq!((r.req_id, r.status), (0, ST_ERR));
    assert!(c.recv().is_err());
    handle.shutdown();
}

#[test]
fn unknown_opcode_echoes_req_id_then_closes() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let mut body = 77u64.to_le_bytes().to_vec();
    body.push(250); // no such opcode
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    c.send_raw(&frame).unwrap();
    let r = c.recv().unwrap();
    assert_eq!(r.req_id, 77, "parse errors echo the broken request's id");
    assert_eq!(r.status, ST_ERR);
    assert!(c.recv().is_err(), "desynced stream must be closed");
    handle.shutdown();
}

#[test]
fn trailing_bytes_in_frame_are_rejected() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let good = encode_request(5, &Request::Get { key: b"k".to_vec() });
    // Re-frame with one junk byte appended to the body.
    let mut body = good[4..].to_vec();
    body.push(0xAB);
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    c.send_raw(&frame).unwrap();
    let r = c.recv().unwrap();
    assert_eq!((r.req_id, r.status), (5, ST_ERR));
    handle.shutdown();
}

#[test]
fn torn_frame_then_disconnect_leaves_server_healthy() {
    let handle = boot(false);
    {
        let mut c = Client::connect(handle.local_addr()).unwrap();
        let frame = encode_request(
            9,
            &Request::Put {
                key: b"torn".to_vec(),
                value: b"v".to_vec(),
            },
        );
        // Half a frame, then vanish.
        c.send_raw(&frame[..frame.len() / 2]).unwrap();
    }
    // A fresh connection still gets full service.
    let mut c2 = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(c2.put(b"after", b"1").unwrap(), Outcome::Ok(vec![]));
    assert_eq!(c2.get(b"after").unwrap(), Some(b"1".to_vec()));
    // The torn write never became an op.
    assert_eq!(c2.get(b"torn").unwrap(), None);
    assert!(eventually(&handle, |s| s.server.connections_active == 1));
    handle.shutdown();
}

#[test]
fn partial_reads_reassemble_into_one_request() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let frame = encode_request(
        3,
        &Request::Put {
            key: b"dribble".to_vec(),
            value: b"ok".to_vec(),
        },
    );
    // One byte at a time, with pauses: the reader must block for the rest
    // of the frame, not treat a short read as a protocol error.
    for chunk in frame.chunks(1) {
        c.send_raw(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let r = c.recv().unwrap();
    assert_eq!((r.req_id, r.status), (3, ST_OK));
    assert_eq!(c.get(b"dribble").unwrap(), Some(b"ok".to_vec()));
    handle.shutdown();
}

#[test]
fn disconnect_mid_pipeline_under_group_commit_is_harmless() {
    let handle = boot(true);
    {
        let mut c = Client::connect(handle.local_addr()).unwrap();
        // Fire a pipeline of writes and hang up without reading a single
        // response: workers and the committer must drain the in-flight
        // items into closed channels without wedging or crashing.
        for i in 0..200u32 {
            c.send(&Request::Put {
                key: format!("gone{i:04}").into_bytes(),
                value: b"x".to_vec(),
            })
            .unwrap();
        }
    }
    assert!(eventually(&handle, |s| s.server.connections_active == 0));
    // Server still fully functional on a new connection, and the orphaned
    // writes were still applied and committed in order.
    let mut c2 = Client::connect(handle.local_addr()).unwrap();
    assert!(eventually(&handle, |s| s.group.flushes > 0));
    assert_eq!(c2.get(b"gone0000").unwrap(), Some(b"x".to_vec()));
    assert_eq!(c2.put(b"alive", b"1").unwrap(), Outcome::Ok(vec![]));
    handle.shutdown();
}

#[test]
fn bad_keys_and_tenants_error_without_closing() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    // Key over 24 bytes: op-level error, connection survives.
    let id = c
        .send(&Request::Put {
            key: vec![b'q'; 30],
            value: b"v".to_vec(),
        })
        .unwrap();
    let r = c.recv_for(id).unwrap();
    assert_eq!(r.status, ST_ERR);
    // Tenant too long (> MAX_TENANT_LEN): refused, connection survives.
    assert!(matches!(c.hello(b"waytoolong").unwrap(), Outcome::Err(_)));
    // Still serving.
    assert_eq!(c.put(b"ok", b"1").unwrap(), Outcome::Ok(vec![]));
    handle.shutdown();
}

#[test]
fn scan_limit_is_clamped_server_side() {
    let handle = boot(false);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    for i in 0..(MAX_SCAN_LIMIT + 100) {
        c.put(format!("z{i:06}").as_bytes(), b"v").unwrap();
    }
    let rows = c.scan(b"z", b"z~", u32::MAX).unwrap();
    assert_eq!(rows.len(), MAX_SCAN_LIMIT as usize);
    handle.shutdown();
}

#[test]
fn raw_socket_garbage_storm_never_wedges_the_server() {
    let handle = boot(true);
    let addr = handle.local_addr();
    // A burst of connections each sending a different flavor of junk.
    std::thread::scope(|s| {
        for seed in 0..16u64 {
            s.spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).unwrap();
                let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut junk = Vec::with_capacity(64);
                for _ in 0..64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    junk.push(x as u8);
                }
                let _ = sock.write_all(&junk);
                // Read whatever comes back until the server hangs up.
                let _ = sock.set_read_timeout(Some(Duration::from_secs(5)));
                let mut buf = [0u8; 256];
                while let Ok(n) = sock.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                }
            });
        }
    });
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.put(b"survivor", b"1").unwrap(), Outcome::Ok(vec![]));
    assert_eq!(c.get(b"survivor").unwrap(), Some(b"1".to_vec()));
    handle.shutdown();
}
