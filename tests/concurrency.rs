//! Concurrency stress for HART's per-ART reader-writer locking
//! (§III-A.3): concurrent writers on disjoint and overlapping ARTs,
//! readers during writes, deletion racing insertion on the same hash
//! prefix (the shard-removal / shard-revival race), and a post-stress
//! full consistency check.

use hart_suite::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn build() -> Arc<Hart> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 128 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    Arc::new(Hart::create(pool, HartConfig::default()).unwrap())
}

#[test]
fn disjoint_prefix_writers() {
    let h = build();
    std::thread::scope(|s| {
        for t in 0..8u8 {
            let h = Arc::clone(&h);
            s.spawn(move || {
                let prefix = format!("{}{}", (b'A' + t) as char, (b'A' + t) as char);
                for i in 0..2000u64 {
                    let key = Key::from_str(&format!("{prefix}{i:05}")).unwrap();
                    h.insert(&key, &Value::from_u64(i)).unwrap();
                    if i % 3 == 0 {
                        h.update(&key, &Value::from_u64(i * 2)).unwrap();
                    }
                    if i % 7 == 0 {
                        assert!(h.remove(&key).unwrap());
                    }
                }
            });
        }
    });
    let expected_per_thread = 2000 - 2000u64.div_ceil(7);
    assert_eq!(h.len() as u64, 8 * expected_per_thread);
    h.check_consistency().unwrap();
}

#[test]
fn readers_see_consistent_values_during_writes() {
    let h = build();
    let keys: Vec<Key> = (0..500).map(|i| Key::from_u64_base62(i, 6)).collect();
    for k in &keys {
        h.insert(k, &Value::from_u64(1)).unwrap();
    }
    let anomalies = AtomicU64::new(0);
    std::thread::scope(|s| {
        // One writer cycling values 1 -> 2 -> 1...
        {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for round in 0..20u64 {
                    for k in &keys[..] {
                        h.update(k, &Value::from_u64(1 + (round % 2))).unwrap();
                    }
                }
            });
        }
        // Readers: every observed value must be 1 or 2, never torn/absent.
        for _ in 0..4 {
            let h = Arc::clone(&h);
            let anomalies = &anomalies;
            s.spawn(move || {
                for _ in 0..10 {
                    for i in (0..500).step_by(3) {
                        let key = Key::from_u64_base62(i, 6);
                        match h.search(&key).unwrap() {
                            Some(v) if v.as_u64() == 1 || v.as_u64() == 2 => {}
                            other => {
                                eprintln!("anomaly: {other:?}");
                                anomalies.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    assert_eq!(anomalies.load(Ordering::Relaxed), 0);
    h.check_consistency().unwrap();
}

#[test]
fn shard_removal_races_insertion() {
    // All keys share one hash prefix; deleters empty the ART (unlinking
    // the shard) while inserters re-create it. The dead-shard retry loop
    // must never lose an insert.
    let h = build();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for round in 0..300u64 {
                    let key = Key::from_str(&format!("QQ{t}")).unwrap();
                    h.insert(&key, &Value::from_u64(round)).unwrap();
                    assert!(h.search(&key).unwrap().is_some(), "own insert visible");
                    h.remove(&key).unwrap();
                }
            });
        }
    });
    assert_eq!(h.len(), 0);
    assert_eq!(h.art_count(), 0);
    // The prefix is still usable afterwards.
    h.insert(&Key::from_str("QQfinal").unwrap(), &Value::from_u64(1))
        .unwrap();
    assert_eq!(h.len(), 1);
    h.check_consistency().unwrap();
}

#[test]
fn mixed_stress_then_full_verification() {
    let h = build();
    let n_per_thread = 1500u64;
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let h = Arc::clone(&h);
            s.spawn(move || {
                // Overlapping keyspace: thread t owns keys where
                // key % 6 == t for writes; everyone reads everything.
                for i in 0..n_per_thread {
                    let id = i * 6 + t;
                    let key = Key::from_u64_base62(id, 8);
                    h.insert(&key, &Value::from_u64(id)).unwrap();
                    let probe = Key::from_u64_base62(i * 6 % (id + 1), 8);
                    let _ = h.search(&probe).unwrap();
                    if id % 5 == 0 {
                        h.update(&key, &Value::from_u64(id + 1_000_000)).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(h.len() as u64, 6 * n_per_thread);
    for id in 0..6 * n_per_thread {
        let got = h
            .search(&Key::from_u64_base62(id, 8))
            .unwrap()
            .expect("present");
        let expect = if id % 5 == 0 { id + 1_000_000 } else { id };
        assert_eq!(got.as_u64(), expect, "key {id}");
    }
    h.check_consistency().unwrap();
}

#[test]
fn concurrent_updates_same_keys_are_serializable() {
    // Many writers updating the SAME keys: final value must be one of the
    // written values and the update log pool must not deadlock.
    let h = build();
    let keys: Vec<Key> = (0..64).map(|i| Key::from_u64_base62(i, 6)).collect();
    for k in &keys {
        h.insert(k, &Value::from_u64(0)).unwrap();
    }
    std::thread::scope(|s| {
        for t in 1..=8u64 {
            let h = Arc::clone(&h);
            let keys = &keys;
            s.spawn(move || {
                for round in 0..100u64 {
                    for k in keys {
                        h.update(k, &Value::from_u64(t * 1000 + round)).unwrap();
                    }
                }
            });
        }
    });
    for k in &keys {
        let v = h.search(k).unwrap().unwrap().as_u64();
        let (t, round) = (v / 1000, v % 1000);
        assert!(
            (1..=8).contains(&t) && round < 100,
            "impossible final value {v}"
        );
    }
    h.check_consistency().unwrap();
}
