//! Recovery round-trips (Algorithm 7 and the baselines' reopen paths):
//! after any clean shutdown or crash, reopening the PM image must yield
//! exactly the pre-shutdown contents — across multiple generations.

use hart_suite::workloads::{random, value_for};
use hart_suite::{
    ArtCow, FpTree, Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value, Woart,
};
use std::sync::Arc;

fn pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 64 << 20,
        ..PoolConfig::test_small()
    }))
}

#[test]
fn hart_survives_many_generations() {
    let pool = pool();
    let keys = random(5000, 21);
    {
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for k in &keys {
            h.insert(k, &value_for(k)).unwrap();
        }
    }
    // Five generations, each mutating and recovering.
    for generation in 0..5u64 {
        let h = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        h.check_consistency().unwrap();
        // Verify previous generations' effects. Key i was removed in
        // generation g if i ∈ [g*100, (g+1)*100); it was updated in
        // generation m = i % 1000 (to 0xAAAA + m) if m < generation and the
        // key had not been removed by then (i >= (m+1)*100).
        for (i, k) in keys.iter().enumerate() {
            let i = i as u64;
            let got = h.search(k).unwrap();
            if i < generation * 100 {
                assert_eq!(got, None, "gen {generation}: key {i} should be gone");
                continue;
            }
            let m = i % 1000;
            if m < generation && i >= (m + 1) * 100 {
                assert_eq!(
                    got.unwrap().as_u64(),
                    0xAAAA + m,
                    "gen {generation}: key {i}"
                );
            } else {
                assert_eq!(got.unwrap(), value_for(k), "gen {generation}: key {i}");
            }
        }
        // Mutate: remove a slice, update a sparse set.
        for k in &keys[(generation * 100) as usize..((generation + 1) * 100) as usize] {
            assert!(h.remove(k).unwrap());
        }
        for (i, k) in keys.iter().enumerate() {
            if (i as u64) % 1000 == generation && (i as u64) >= (generation + 1) * 100 {
                assert!(h.update(k, &Value::from_u64(0xAAAA + generation)).unwrap());
            }
        }
    }
}

#[test]
fn recovered_hart_equals_rebuilt_hart() {
    // The recovered index must answer identically to one rebuilt from
    // scratch with the same final contents.
    let pool = pool();
    let keys = random(3000, 5);
    {
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for (i, k) in keys.iter().enumerate() {
            h.insert(k, &value_for(k)).unwrap();
            if i % 3 == 0 {
                h.remove(k).unwrap();
            }
        }
    }
    let recovered = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();

    let fresh_pool = self::pool();
    let fresh = Hart::create(fresh_pool, HartConfig::default()).unwrap();
    for (i, k) in keys.iter().enumerate() {
        if i % 3 != 0 {
            fresh.insert(k, &value_for(k)).unwrap();
        }
    }
    assert_eq!(recovered.len(), fresh.len());
    for k in &keys {
        assert_eq!(recovered.search(k).unwrap(), fresh.search(k).unwrap());
    }
    // Ordered scans agree too.
    let lo = Key::from_str("0").unwrap();
    let hi = Key::new(&[b'z'; 16]).unwrap();
    assert_eq!(
        recovered.range(&lo, &hi).unwrap(),
        fresh.range(&lo, &hi).unwrap()
    );
}

#[test]
fn recovery_respects_hash_key_len() {
    // Recovering with a different k_h re-splits the stored complete keys.
    let pool = pool();
    let keys = random(2000, 9);
    {
        let h = Hart::create(Arc::clone(&pool), HartConfig::with_hash_key_len(2)).unwrap();
        for k in &keys {
            h.insert(k, &value_for(k)).unwrap();
        }
    }
    for kh in [0usize, 1, 3] {
        let h = Hart::recover(Arc::clone(&pool), HartConfig::with_hash_key_len(kh)).unwrap();
        assert_eq!(h.len(), keys.len(), "kh={kh}");
        for k in keys.iter().step_by(97) {
            assert_eq!(h.search(k).unwrap().unwrap(), value_for(k), "kh={kh}");
        }
        h.check_consistency().unwrap();
    }
}

#[test]
fn woart_and_artcow_reopen() {
    let keys = random(3000, 31);
    // WOART.
    let p = pool();
    {
        let t = Woart::create(Arc::clone(&p)).unwrap();
        for k in &keys {
            t.insert(k, &value_for(k)).unwrap();
        }
        for k in keys.iter().step_by(5) {
            t.remove(k).unwrap();
        }
    }
    let t = Woart::open(Arc::clone(&p)).unwrap();
    for (i, k) in keys.iter().enumerate() {
        let got = t.search(k).unwrap();
        if i % 5 == 0 {
            assert_eq!(got, None);
        } else {
            assert_eq!(got.unwrap(), value_for(k));
        }
    }
    // ART+CoW.
    let p = pool();
    {
        let t = ArtCow::create(Arc::clone(&p)).unwrap();
        for k in &keys {
            t.insert(k, &value_for(k)).unwrap();
        }
    }
    let t = ArtCow::open(p).unwrap();
    assert_eq!(t.len(), keys.len());
    for k in keys.iter().step_by(13) {
        assert_eq!(t.search(k).unwrap().unwrap(), value_for(k));
    }
}

#[test]
fn fptree_recovery_after_heavy_churn() {
    let p = pool();
    let keys = random(4000, 77);
    {
        let t = FpTree::create(Arc::clone(&p)).unwrap();
        for k in &keys {
            t.insert(k, &value_for(k)).unwrap();
        }
        // Churn: delete half, update a quarter, reinsert a tenth.
        for k in keys.iter().step_by(2) {
            assert!(t.remove(k).unwrap());
        }
        for k in keys.iter().skip(1).step_by(4) {
            t.update(k, &Value::from_u64(0xBEEF)).unwrap();
        }
        for k in keys.iter().step_by(10) {
            t.insert(k, &Value::from_u64(0xF00D)).unwrap();
        }
    }
    let t = FpTree::recover(Arc::clone(&p)).unwrap();
    for (i, k) in keys.iter().enumerate() {
        let got = t.search(k).unwrap();
        if i % 10 == 0 {
            assert_eq!(got.unwrap().as_u64(), 0xF00D, "key {i}");
        } else if i % 2 == 0 {
            assert_eq!(got, None, "key {i}");
        } else if i % 4 == 1 {
            assert_eq!(got.unwrap().as_u64(), 0xBEEF, "key {i}");
        } else {
            assert_eq!(got.unwrap(), value_for(k), "key {i}");
        }
    }
}

#[test]
fn wrong_magic_is_rejected_everywhere() {
    let p = pool(); // formatted by nobody
    assert!(Hart::recover(Arc::clone(&p), HartConfig::default()).is_err());
    assert!(Woart::open(Arc::clone(&p)).is_err());
    assert!(ArtCow::open(Arc::clone(&p)).is_err());
    assert!(FpTree::recover(p).is_err());
}
