//! Stress battery for online hash-directory resizing (DESIGN.md
//! §Resizing).
//!
//! The directory starts tiny (8 buckets) with the most aggressive load
//! threshold (1 entry per bucket), so a key set spanning 128 hash prefixes
//! forces several doublings — with optimistic readers, range scans and
//! removals in flight while the bucket arrays are swapped and drained.
//! Values use the mirrored 16-byte encoding of `optimistic_reads.rs`, so
//! any read assembled from a torn bucket probe or a recycled table fails
//! structurally.
//!
//! Iteration counts scale with the `HART_STRESS_MULT` env var (the nightly
//! CI stress job sets 4).

use hart_suite::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn build(cfg: HartConfig) -> Arc<Hart> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 128 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    Arc::new(Hart::create(pool, cfg).unwrap())
}

fn stress_mult() -> u64 {
    std::env::var("HART_STRESS_MULT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Tiny deterministic PRNG so each thread gets an independent, repeatable
/// op stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// 128 two-byte hash prefixes ("AA".."EX" under the default `k_h = 2`),
/// 4 keys each: enough shards that a directory born with 8 buckets must
/// double at least four times to get back under load factor 1.
const N_PREFIXES: u64 = 128;
const KEYS_PER_PREFIX: u64 = 4;
const N_KEYS: u64 = N_PREFIXES * KEYS_PER_PREFIX;

fn key_of(kid: u64) -> Key {
    let p = kid / KEYS_PER_PREFIX;
    let a = (b'A' + (p / 26) as u8) as char;
    let b = (b'A' + (p % 26) as u8) as char;
    Key::from_str(&format!("{a}{b}{:03}", kid % KEYS_PER_PREFIX)).unwrap()
}

/// 16-byte value: the 8-byte payload mirrored (see `optimistic_reads.rs`).
fn value_of(x: u64) -> Value {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&x.to_le_bytes());
    b[8..].copy_from_slice(&x.to_le_bytes());
    Value::new(&b).unwrap()
}

fn decode(v: &Value) -> Option<u64> {
    let s = v.as_slice();
    if s.len() != 16 || s[..8] != s[8..] {
        return None;
    }
    Some(u64::from_le_bytes(s[..8].try_into().unwrap()))
}

fn aggressive() -> HartConfig {
    HartConfig {
        initial_buckets: 8,
        resize_threshold: 1,
        ..HartConfig::default()
    }
}

/// Tentpole stress: writers churn 512 keys (inserts, updates, removes)
/// through a directory that has to double repeatedly, while readers do
/// lock-free point lookups and ordered range scans. Every value any
/// reader sees must decode cleanly — a probe that caught a half-installed
/// bucket array or a recycled entry table would fail the mirror check.
#[test]
fn growth_stress_with_concurrent_readers() {
    let h = build(aggressive());
    // Preload half the keys: all 128 prefixes exist up front, so several
    // grows fire before the stress even starts and the rest of the test
    // runs against a directory with live migration traffic.
    for kid in (0..N_KEYS).step_by(2) {
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
    }
    assert!(
        h.hash_resize_count() >= 3,
        "preload alone should force several doublings"
    );
    let iters = 2_000 * stress_mult();
    let done = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            let (done, torn, hits) = (&done, &torn, &hits);
            s.spawn(move || {
                let mut rng = XorShift(0xFEED_FACE ^ (t + 1));
                while !done.load(Ordering::Relaxed) {
                    if rng.next().is_multiple_of(8) {
                        // Ordered scan across many shards mid-migration.
                        let lo = key_of((rng.next() % N_KEYS) & !(KEYS_PER_PREFIX - 1));
                        let hi = key_of(N_KEYS - 1);
                        for (_, v) in h.ordered_range(&lo, &hi).unwrap() {
                            hits.fetch_add(1, Ordering::Relaxed);
                            if decode(&v).is_none() {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let kid = rng.next() % N_KEYS;
                        if let Some(v) = h.search(&key_of(kid)).unwrap() {
                            hits.fetch_add(1, Ordering::Relaxed);
                            if decode(&v).is_none() {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    let mut rng = XorShift(0xB16_B00B5 ^ (t + 1));
                    for seq in 0..iters {
                        let kid = rng.next() % N_KEYS;
                        let key = key_of(kid);
                        match rng.next() % 4 {
                            // 2/4 insert-or-update, 1/4 remove, 1/4 read.
                            0 | 1 => {
                                h.insert(&key, &value_of((t << 48) | seq)).unwrap();
                            }
                            2 => {
                                let _ = h.remove(&key).unwrap();
                            }
                            _ => {
                                let _ = h.search(&key).unwrap();
                            }
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "reads must never tear during resizing"
    );
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "readers must observe data"
    );
    assert!(
        h.hash_resize_count() >= 3,
        "got {} grows",
        h.hash_resize_count()
    );
    assert!(
        h.hash_bucket_count() > 8,
        "directory never left its initial size"
    );
    h.check_consistency().unwrap();
    // Deterministic readback: overwrite everything, then every key must be
    // present with the new value through both lookup paths.
    for kid in 0..N_KEYS {
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
    }
    assert_eq!(h.len(), N_KEYS as usize);
    for kid in 0..N_KEYS {
        let v = h
            .search(&key_of(kid))
            .unwrap()
            .expect("present after stress");
        assert_eq!(decode(&v), Some(kid));
    }
    assert_eq!(
        h.ordered_range(&key_of(0), &key_of(N_KEYS - 1))
            .unwrap()
            .len(),
        N_KEYS as usize
    );
}

/// Kill-switch equivalence: `resize_threshold = 0` (the pre-resize fixed
/// directory) and the aggressive resizing config must be observationally
/// identical under the same deterministic op sequence — resizing is a
/// performance feature, never a semantic one.
#[test]
fn kill_switch_matches_resizing_directory() {
    let fixed = build(HartConfig::with_fixed_directory());
    let resizing = build(aggressive());
    let mut rng = XorShift(0x5EED_CAFE);
    for seq in 0..6_000 * stress_mult() {
        let kid = rng.next() % N_KEYS;
        let key = key_of(kid);
        match rng.next() % 4 {
            0 | 1 => {
                let x = (kid << 32) | seq;
                fixed.insert(&key, &value_of(x)).unwrap();
                resizing.insert(&key, &value_of(x)).unwrap();
            }
            2 => {
                assert_eq!(fixed.remove(&key).unwrap(), resizing.remove(&key).unwrap());
            }
            _ => {
                assert_eq!(fixed.search(&key).unwrap(), resizing.search(&key).unwrap());
            }
        }
    }
    assert_eq!(fixed.hash_resize_count(), 0);
    assert!(resizing.hash_resize_count() >= 3);
    assert_eq!(fixed.len(), resizing.len());
    assert_eq!(fixed.art_count(), resizing.art_count());
    let lo = key_of(0);
    let hi = key_of(N_KEYS - 1);
    assert_eq!(
        fixed.ordered_range(&lo, &hi).unwrap(),
        resizing.ordered_range(&lo, &hi).unwrap()
    );
    fixed.check_consistency().unwrap();
    resizing.check_consistency().unwrap();
}

/// Recovery rebuilds the directory through the same resizing machinery:
/// reopening a pool under an aggressive config must re-grow the directory
/// and land on identical contents.
#[test]
fn recovery_regrows_directory() {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 128 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    {
        let h = Hart::create(Arc::clone(&pool), aggressive()).unwrap();
        for kid in 0..N_KEYS {
            h.insert(&key_of(kid), &value_of(kid)).unwrap();
        }
        assert!(h.hash_resize_count() >= 3);
    }
    let h = Hart::recover(pool, aggressive()).unwrap();
    assert_eq!(h.len(), N_KEYS as usize);
    assert!(
        h.hash_resize_count() >= 3,
        "recovery reinsertion must re-trigger growth"
    );
    assert!(h.hash_bucket_count() > 8);
    for kid in 0..N_KEYS {
        let v = h
            .search(&key_of(kid))
            .unwrap()
            .expect("present after recovery");
        assert_eq!(decode(&v), Some(kid));
    }
    h.check_consistency().unwrap();
}

/// Stash-drain coverage: with a load threshold above the home-bucket cap,
/// every table generation chains past the cap before the load trigger can
/// fire, so inserts keep displacing entries into the stash region — and
/// every doubling (driven by the chain trigger) must drain those
/// displaced entries along with their home buckets. Verified from the
/// outside: nothing is ever lost, and the probe counters prove the stash
/// actually participated.
#[test]
fn stash_entries_survive_repeated_doublings() {
    let h = build(HartConfig {
        initial_buckets: 2,
        resize_threshold: 20,
        ..HartConfig::default()
    });
    for kid in 0..N_KEYS {
        h.insert(&key_of(kid), &value_of(kid)).unwrap();
        // Probe the key just inserted: a spilling insert displaces
        // exactly this key into the stash, and reads never drain, so the
        // probe must traverse home-miss → overflow bit → stash while the
        // chain-triggered grow is still migrating.
        assert!(h.search(&key_of(kid)).unwrap().is_some(), "lost key {kid}");
        // And an older key, so probes also run against half-drained
        // tables.
        let back = key_of(kid / 2);
        assert!(h.search(&back).unwrap().is_some(), "lost key {}", kid / 2);
    }
    // Pigeonhole floor, independent of the random hash seed: 128 shards
    // force a 17-chain (and hence a spill + chain-triggered grow) at both
    // 2 and 4 buckets, since 128 > 16 * 4. Further doublings depend on
    // seed balance, so only two are guaranteed.
    assert!(h.hash_resize_count() >= 2, "battery must force doublings");
    for kid in 0..N_KEYS {
        let v = h.search(&key_of(kid)).unwrap().expect("present at end");
        assert_eq!(decode(&v), Some(kid));
    }
    let snap = h.obs_snapshot();
    assert!(
        snap.dir.stash_spills > 0,
        "2 initial buckets under 128 prefixes must overflow the cap"
    );
    assert!(snap.dir.stash_probes > 0, "stash must have served probes");
    h.check_consistency().unwrap();
}

/// Targeted regression for the disciplines pmlint R10 (`guarded-by`) now
/// enforces statically on `dir.rs`: old-table retirement — the
/// `old.store(null)` publish in `finish_migration` — happens under the
/// resize lock exactly once, no matter how many readers race through
/// `try_finish` against writers draining via `help_migrate`. A double
/// retirement would free the old bucket array twice (UB, typically a
/// crash or torn values); a missed one would pin `migration_in_progress`
/// forever. Each wave forces fresh doublings while four reader threads
/// hammer the finish path mid-drain, then drives writer traffic until
/// the drain completes and the full key space reads back intact.
#[test]
fn concurrent_helpers_retire_old_tables_exactly_once() {
    let h = build(aggressive());
    let waves = 8u64;
    let per_wave = N_KEYS / waves;
    let torn = AtomicU64::new(0);
    for wave in 0..waves {
        let lo = wave * per_wave;
        let hi = lo + per_wave;
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (stop, torn) = (&stop, &torn);
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    // Readers race `try_finish` against the drain: every
                    // lookup that sees a fully-drained old table attempts
                    // the retirement itself.
                    let mut rng = XorShift(0xDEAD_0001 ^ (wave << 8) ^ (t + 1));
                    while !stop.load(Ordering::Relaxed) {
                        let kid = rng.next() % hi.max(1);
                        if let Some(v) = h.search(&key_of(kid)).unwrap() {
                            if decode(&v).is_none() {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            for kid in lo..hi {
                h.insert(&key_of(kid), &value_of(kid)).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Drive writer traffic (updates help-migrate on every call) until
        // the old array drains and some operation retires it. Bounded so a
        // lost retirement fails loudly instead of hanging the suite.
        let mut spins = 0u64;
        while h.hash_migration_in_progress() {
            let kid = spins % hi.max(1);
            h.insert(&key_of(kid), &value_of(kid)).unwrap();
            spins += 1;
            assert!(
                spins < 1_000_000,
                "migration never finished after wave {wave}: a drained old \
                 table was not retired"
            );
        }
        h.check_consistency().unwrap();
    }
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "reads tore while racing old-table retirement"
    );
    assert!(
        h.hash_resize_count() >= 3,
        "waves must force doublings, got {}",
        h.hash_resize_count()
    );
    for kid in 0..N_KEYS {
        let v = h.search(&key_of(kid)).unwrap().expect("present at end");
        assert_eq!(decode(&v), Some(kid));
    }
}
