//! Scan-correctness battery (DESIGN.md §Scans).
//!
//! Two layers:
//!
//! * **Oracle shadow** — every persistent index's trait-level
//!   `scan(start, end, limit)` must equal a `BTreeMap` shadow's range over
//!   the same contents, for arbitrary contents, arbitrary (including
//!   inverted, degenerate, and full) ranges, and arbitrary limits. HART
//!   runs twice: the paper's `k_h = 2` config and an aggressive
//!   `k_h = 3` / 8-bucket / threshold-1 config so shard boundaries and a
//!   heavily resized directory are under the same oracle.
//! * **Scan-vs-resize stress** — ordered scans race writers that force
//!   directory doublings and shard drains for 100 rounds per scanner; no
//!   scan may return a duplicated key, an out-of-order key, or miss a key
//!   committed before the scan started. The nightly lock-witness CI job
//!   runs this under `--features lock-witness`.

use hart_suite::{
    all_trees, Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value, Wort,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn small_pool_cfg() -> PoolConfig {
    PoolConfig {
        size_bytes: 64 << 20,
        ..PoolConfig::test_small()
    }
}

/// The paper's four trees plus WORT plus a shard-boundary-heavy HART:
/// every index that answers `scan`, each over its own fresh pool.
fn scan_trees() -> Vec<Box<dyn PersistentIndex>> {
    let cfg = small_pool_cfg();
    let mut trees = all_trees(cfg.clone());
    trees.push(Box::new(
        Wort::create(Arc::new(PmemPool::new(cfg.clone()))).expect("create WORT"),
    ));
    trees.push(Box::new(
        Hart::create(
            Arc::new(PmemPool::new(cfg)),
            HartConfig {
                hash_key_len: 3,
                initial_buckets: 8,
                resize_threshold: 1,
                ..HartConfig::default()
            },
        )
        .expect("create HART k_h=3"),
    ));
    trees
}

/// Smallest and largest valid keys — the full-range bounds.
fn min_key() -> Key {
    Key::new(&[0x01]).unwrap()
}

fn max_key() -> Key {
    Key::new(&[0xFF; hart_suite::kv::MAX_KEY_LEN]).unwrap()
}

/// What `scan` must return: the shadow's inclusive range, first `limit`.
fn oracle(
    model: &BTreeMap<Vec<u8>, Vec<u8>>,
    s: &[u8],
    e: &[u8],
    limit: usize,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    if s > e {
        return Vec::new();
    }
    model
        .range(s.to_vec()..=e.to_vec())
        .take(limit)
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn got_as_bytes(rows: &[(Key, Value)]) -> Vec<(Vec<u8>, Vec<u8>)> {
    rows.iter()
        .map(|(k, v)| (k.as_slice().to_vec(), v.as_slice().to_vec()))
        .collect()
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // 1–10 bytes over a compact alphabet: heavy prefix sharing, keys both
    // shorter and longer than HART's hash prefixes (2 and 3 bytes here).
    vec(
        prop_oneof![Just(b'A'), Just(b'B'), Just(b'a'), Just(b'1')],
        1..10,
    )
}

fn arb_value() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary contents, arbitrary ranges and limits: every tree's scan
    /// equals the shadow's range, and the unlimited full-range scan equals
    /// the whole shadow.
    #[test]
    fn scan_matches_btreemap_shadow(
        entries in vec((arb_key(), arb_value()), 0..120),
        ranges in vec((arb_key(), arb_key(), 0usize..50), 1..6),
    ) {
        let trees = scan_trees();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in &entries {
            let (key, value) = (Key::new(k).unwrap(), Value::new(v).unwrap());
            for t in &trees {
                t.insert(&key, &value).unwrap();
            }
            model.insert(k.clone(), v.clone());
        }
        for (a, b, limit) in &ranges {
            let (s, e) = (Key::new(a).unwrap(), Key::new(b).unwrap());
            let want = oracle(&model, a, b, *limit);
            for t in &trees {
                let got = t.scan(&s, &e, *limit).unwrap();
                prop_assert_eq!(
                    got_as_bytes(&got), want.clone(),
                    "[{}] scan {:?}..={:?} limit {}", t.name(), a, b, limit
                );
                // Degenerate range at the start key: at most that one key.
                let got = t.scan(&s, &s, usize::MAX).unwrap();
                prop_assert_eq!(
                    got_as_bytes(&got), oracle(&model, a, a, usize::MAX),
                    "[{}] degenerate scan at {:?}", t.name(), a
                );
            }
        }
        let full: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        for t in &trees {
            let got = t.scan(&min_key(), &max_key(), usize::MAX).unwrap();
            prop_assert_eq!(got_as_bytes(&got), full.clone(), "[{}] full scan", t.name());
        }
    }
}

/// Deterministic edge cases the proptest shrinker would have to stumble
/// into: empty tree, inverted range, zero limit, exact-limit boundary.
#[test]
fn scan_edge_cases_on_every_tree() {
    for t in scan_trees() {
        // Empty tree: anything scans to nothing.
        assert!(t
            .scan(&min_key(), &max_key(), usize::MAX)
            .unwrap()
            .is_empty());

        let keys: Vec<Key> = (0..10u64).map(|i| Key::from_u64_base62(i, 4)).collect();
        for k in &keys {
            t.insert(k, &Value::from_u64(7)).unwrap();
        }
        // Inverted range: well-defined empty result, not an error.
        assert!(t.scan(&keys[9], &keys[0], usize::MAX).unwrap().is_empty());
        // Zero limit: empty.
        assert!(t.scan(&keys[0], &keys[9], 0).unwrap().is_empty());
        // Limit 1: exactly the smallest in-range key.
        let got = t.scan(&keys[2], &keys[9], 1).unwrap();
        assert_eq!(got.len(), 1, "[{}]", t.name());
        assert_eq!(got[0].0, keys[2], "[{}]", t.name());
        // Limit on the boundary and past it.
        assert_eq!(t.scan(&keys[0], &keys[9], 10).unwrap().len(), 10);
        assert_eq!(t.scan(&keys[0], &keys[9], 11).unwrap().len(), 10);
        // Result is the keys in order.
        let got = t.scan(&keys[0], &keys[9], usize::MAX).unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            keys,
            "[{}]",
            t.name()
        );
    }
}

// ------------------------------------------------- scan-vs-resize stress

/// 128 prefixes under `k_h = 2`; the committed set lives in the first 16
/// prefixes, the churn set spans all of them, so writer traffic keeps
/// adding shards and forcing directory doublings while scans run.
const N_PREFIXES: u64 = 128;
const KEYS_PER_PREFIX: u64 = 4;
const N_KEYS: u64 = N_PREFIXES * KEYS_PER_PREFIX;
const COMMITTED_PREFIXES: u64 = 16;

fn key_of(kid: u64) -> Key {
    let p = kid / KEYS_PER_PREFIX;
    let a = (b'A' + (p / 26) as u8) as char;
    let b = (b'A' + (p % 26) as u8) as char;
    Key::from_str(&format!("{a}{b}{:03}", kid % KEYS_PER_PREFIX)).unwrap()
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Scans racing inserts that force directory grows and shard drains, 100
/// rounds per scanner: every result must be strictly key-ordered (hence
/// duplicate-free) and contain every key committed before the stress
/// began. Limited scans must additionally be a prefix of the ordered
/// result with respect to the committed set.
#[test]
fn concurrent_scans_vs_resize_lose_nothing() {
    const ROUNDS: usize = 100;
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 128 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    let h = Arc::new(
        Hart::create(
            pool,
            HartConfig {
                initial_buckets: 8,
                resize_threshold: 1,
                ..HartConfig::default()
            },
        )
        .unwrap(),
    );
    // Committed set: even kids of the first 16 prefixes, inserted before
    // any scanner starts and never touched by writers.
    let committed: Vec<Key> = (0..COMMITTED_PREFIXES * KEYS_PER_PREFIX)
        .step_by(2)
        .map(key_of)
        .collect();
    for k in &committed {
        h.insert(k, &Value::from_u64(1)).unwrap();
    }
    let grows_at_start = h.hash_resize_count();
    let lo = min_key();
    let hi = max_key();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Writers: churn odd kids across all 128 prefixes. New prefixes
        // mean new shards, so the directory keeps doubling mid-test.
        for t in 0..2u64 {
            let h = Arc::clone(&h);
            let stop = &stop;
            s.spawn(move || {
                let mut rng = XorShift(0xDEAD_10CC ^ (t + 1));
                while !stop.load(Ordering::Relaxed) {
                    let kid = (rng.next() % N_KEYS) | 1;
                    let key = key_of(kid);
                    if rng.next().is_multiple_of(4) {
                        let _ = h.remove(&key).unwrap();
                    } else {
                        h.insert(&key, &Value::from_u64(kid)).unwrap();
                    }
                }
            });
        }
        let scanners: Vec<_> = (0..2usize)
            .map(|t| {
                let h = Arc::clone(&h);
                let (committed, lo, hi) = (&committed, &lo, &hi);
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let rows = h.ordered_scan(lo, hi, usize::MAX).unwrap();
                        assert!(
                            rows.windows(2).all(|w| w[0].0 < w[1].0),
                            "scanner {t} round {round}: duplicated or out-of-order key"
                        );
                        let seen: std::collections::BTreeSet<&Key> =
                            rows.iter().map(|(k, _)| k).collect();
                        for k in committed {
                            assert!(
                                seen.contains(k),
                                "scanner {t} round {round}: committed key {k} missing"
                            );
                        }
                        // Limited scan: sorted, within quota, and missing a
                        // committed key only past the truncation point.
                        let limit = 1 + (round * 7) % 96;
                        let rows = h.ordered_scan(lo, hi, limit).unwrap();
                        assert!(rows.len() <= limit);
                        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
                        if let Some((last, _)) = rows.last() {
                            let seen: std::collections::BTreeSet<&Key> =
                                rows.iter().map(|(k, _)| k).collect();
                            for k in committed.iter().filter(|k| *k <= last) {
                                assert!(
                                    seen.contains(k),
                                    "scanner {t} round {round}: committed {k} below \
                                     truncation point {last} missing from limited scan"
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        for sc in scanners {
            sc.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        h.hash_resize_count() > grows_at_start,
        "writer churn must force doublings during the scans \
         (got {} before, {} after)",
        grows_at_start,
        h.hash_resize_count()
    );
    h.check_consistency().unwrap();
    // Post-stress the committed set is still fully scannable.
    let rows = h.ordered_scan(&lo, &hi, usize::MAX).unwrap();
    let seen: std::collections::BTreeSet<&Key> = rows.iter().map(|(k, _)| k).collect();
    for k in &committed {
        assert!(seen.contains(k), "committed key {k} lost after stress");
    }
}
