//! Lock-ordering discipline, checked from both ends (DESIGN.md §8):
//!
//! * statically — seeded inversion fixtures fed through pmlint's R5
//!   `lock-order` rule, proving the rule actually rejects the cycles the
//!   hierarchy exists to prevent;
//! * dynamically — a resize+insert+lookup stress whose every blocking
//!   acquisition is validated by the runtime lock witness when the suite
//!   runs under `--features lock-witness` (the nightly CI job). Without
//!   the feature the same test still runs as a plain concurrency stress.

use hart_suite::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Static side: R5 must reject a seeded rank inversion in dir.rs idiom.
// ---------------------------------------------------------------------

fn lint_as_dir(src: &str) -> Vec<pmlint::Violation> {
    pmlint::lint_source("crates/hart/src/dir.rs", src)
        .into_iter()
        .filter(|v| v.rule == "lock-order")
        .collect()
}

#[test]
fn seeded_rank_inversion_is_rejected() {
    // BUCKET_ENTRIES (20) held, then a blocking DIR_RESIZE (10) acquire:
    // the exact deadlock shape the hierarchy forbids (a resizer holding
    // `resize` takes bucket locks, so the reverse nesting can cycle).
    let src = "\
impl Bucket {
    fn bad_nested(&self, dir: &Directory) {
        let g = self.table.write();
        let r = dir.resize.lock();
        drop(r);
        drop(g);
    }
}
";
    let vs = lint_as_dir(src);
    assert_eq!(vs.len(), 1, "inversion must be flagged: {vs:?}");
    assert_eq!(vs[0].line, 4, "violation anchors at the nested acquire");
    assert!(
        vs[0].msg.contains("BUCKET_ENTRIES") && vs[0].msg.contains("DIR_RESIZE"),
        "message names both classes: {}",
        vs[0].msg
    );
}

#[test]
fn hierarchy_order_nesting_is_accepted() {
    // The legal direction: DIR_RESIZE (10) → BUCKET_ENTRIES (20), the
    // shape `grow`/`finish_resize` actually use.
    let src = "\
impl Directory {
    fn good_nested(&self, bucket: &Bucket) {
        let r = self.resize.lock();
        let g = bucket.table.write();
        drop(g);
        drop(r);
    }
}
";
    let vs = lint_as_dir(src);
    assert!(vs.is_empty(), "legal nesting must pass: {vs:?}");
}

#[test]
fn try_acquisition_is_exempt_from_r5() {
    // try_lock cannot deadlock, so the same inversion through try_lock is
    // reported as a try edge but not a violation — mirroring the runtime
    // witness, which records but never checks try acquisitions.
    let src = "\
impl Bucket {
    fn try_nested(&self, dir: &Directory) {
        let g = self.table.write();
        if let Some(r) = dir.resize.try_lock() {
            drop(r);
        }
        drop(g);
    }
}
";
    let vs = lint_as_dir(src);
    assert!(vs.is_empty(), "try edges are exempt: {vs:?}");
}

#[test]
fn chained_same_rank_nesting_is_accepted() {
    // Hand-over-hand old→current bucket migration: same class, chained.
    let src = "\
impl Directory {
    fn migrate(&self, old: &Bucket, cur: &Bucket) {
        let a = old.table.write();
        let b = cur.table.write();
        drop(b);
        drop(a);
    }
}
";
    let vs = lint_as_dir(src);
    assert!(vs.is_empty(), "chained class may self-nest: {vs:?}");
}

// ---------------------------------------------------------------------
// Dynamic side: resize + insert + lookup churn under the lock witness.
// ---------------------------------------------------------------------

/// Tiny deterministic PRNG (same idiom as `tests/resize.rs`) so every run
/// replays the identical op stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

const N_PREFIXES: u64 = 32;
const KEYS_PER_PREFIX: u64 = 3;
const N_KEYS: u64 = N_PREFIXES * KEYS_PER_PREFIX;

fn key_of(kid: u64) -> Key {
    let p = kid / KEYS_PER_PREFIX;
    let a = (b'A' + (p / 26) as u8) as char;
    let b = (b'A' + (p % 26) as u8) as char;
    Key::from_str(&format!("{a}{b}{:03}", kid % KEYS_PER_PREFIX)).unwrap()
}

fn value_of(x: u64) -> Value {
    Value::new(&x.to_le_bytes()).unwrap()
}

/// One churn round: a fresh directory born with 8 buckets and load
/// threshold 1 is forced through several doublings while two writers and
/// a reader exercise every lock class — DIR_RESIZE and BUCKET_ENTRIES in
/// the directory, SHARD under update, EPALLOC_CLASS / LOG_SLOTS in the
/// allocator, EBR_GARBAGE on deferred frees. Under `lock-witness` every
/// blocking acquisition in the round is hierarchy-checked; a single
/// inversion panics the offending thread and fails the test.
fn churn_round(seed: u64) -> u64 {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 32 << 20,
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }));
    let h = Arc::new(
        Hart::create(
            pool,
            HartConfig {
                initial_buckets: 8,
                resize_threshold: 1,
                ..HartConfig::default()
            },
        )
        .unwrap(),
    );
    let hits = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..2u64 {
            let h = Arc::clone(&h);
            s.spawn(move || {
                let mut rng = XorShift(seed * 4 + w + 1);
                for _ in 0..N_KEYS {
                    let kid = rng.next() % N_KEYS;
                    let k = key_of(kid);
                    if rng.next().is_multiple_of(4) {
                        let _ = h.remove(&k);
                    } else {
                        h.insert(&k, &value_of(kid)).unwrap();
                    }
                }
            });
        }
        let h2 = Arc::clone(&h);
        let hits = &hits;
        s.spawn(move || {
            let mut rng = XorShift(seed * 4 + 3);
            for _ in 0..N_KEYS * 2 {
                let kid = rng.next() % N_KEYS;
                if let Ok(Some(v)) = h2.search(&key_of(kid)) {
                    assert_eq!(v.as_slice(), value_of(kid).as_slice());
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    h.hash_resize_count()
}

#[test]
fn witness_stress_resize_insert_lookup() {
    // 100 independent rounds with distinct deterministic seeds. The point
    // is witness coverage (every round re-walks create → grow → migrate →
    // insert → lookup → remove → reclaim), not throughput.
    let mut resizes = 0;
    for seed in 1..=100u64 {
        resizes += churn_round(seed);
    }
    assert!(
        resizes >= 100,
        "churn must actually exercise resizing, saw {resizes} grows"
    );
}
