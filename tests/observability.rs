//! Integration tests for the `hart-obs` observability layer
//! (DESIGN.md §Observability).
//!
//! * The kill-switch test proves `HartConfig::without_observability()`
//!   changes *telemetry only*: an instrumented and an uninstrumented tree
//!   fed the same operation stream return identical results, and the
//!   disabled tree's snapshot is all-zero with `enabled: false`.
//! * The snapshot tests pin the semantics the CLI and bench harness rely
//!   on: exact op counts, event counters that move when the matching
//!   mechanism runs, and a JSON export that round-trips.

use hart_suite::{
    Hart, HartConfig, Key, ObsSnapshot, PersistentIndex, PmemPool, PoolConfig, Value,
};
use std::sync::Arc;

fn build(cfg: HartConfig) -> Hart {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 64 << 20,
        ..PoolConfig::test_small()
    }));
    Hart::create(pool, cfg).unwrap()
}

fn key(i: u64) -> Key {
    Key::from_str(&format!("AA{i:05}")).unwrap()
}

/// Drive one operation stream against `t`, returning every observable
/// result in order so two trees can be compared step by step.
fn drive(t: &Hart) -> Vec<String> {
    let mut log = Vec::new();
    for i in 0..500u64 {
        t.insert(&key(i), &Value::from_u64(i)).unwrap();
    }
    for i in 0..600u64 {
        log.push(format!(
            "{:?}",
            t.search(&key(i)).unwrap().map(|v| v.as_u64())
        ));
    }
    for i in 0..500u64 {
        log.push(format!(
            "{}",
            t.update(&key(i), &Value::from_u64(i * 3)).unwrap()
        ));
    }
    for i in (0..500u64).step_by(2) {
        log.push(format!("{}", t.remove(&key(i)).unwrap()));
    }
    for i in 0..500u64 {
        log.push(format!(
            "{:?}",
            t.search(&key(i)).unwrap().map(|v| v.as_u64())
        ));
    }
    let rows = t
        .range(&key(100), &key(200))
        .unwrap()
        .iter()
        .map(|(k, v)| format!("{:?}={}", k, v.as_u64()))
        .collect::<Vec<_>>();
    log.push(rows.join(","));
    log.push(format!("len={}", t.len()));
    log
}

#[test]
fn kill_switch_preserves_results_and_zeroes_snapshot() {
    let on = build(HartConfig::default());
    let off = build(HartConfig::without_observability());
    assert_eq!(drive(&on), drive(&off), "telemetry must not change results");

    let s_on = on.obs_snapshot();
    assert!(s_on.enabled);
    assert_eq!(s_on.ops.insert.count, 500);
    assert_eq!(s_on.ops.search.count, 1100);
    assert_eq!(s_on.ops.update.count, 500);
    assert_eq!(s_on.ops.remove.count, 250);

    let s_off = off.obs_snapshot();
    assert_eq!(
        s_off,
        ObsSnapshot::default(),
        "disabled snapshot must be all-zero"
    );
    assert!(!s_off.enabled);
}

#[test]
fn snapshot_tracks_ops_allocator_and_pm() {
    let t = build(HartConfig::default());
    for i in 0..200u64 {
        t.insert(&key(i), &Value::from_u64(i)).unwrap();
    }
    for i in 0..200u64 {
        t.search(&key(i)).unwrap();
    }
    for i in 0..50u64 {
        t.update(&key(i), &Value::from_u64(i + 1)).unwrap();
    }
    let s = t.obs_snapshot();
    assert!(s.enabled);
    // Exact counts, sampled latencies.
    assert_eq!(s.ops.insert.count, 200);
    assert_eq!(s.ops.search.count, 200);
    assert_eq!(s.ops.update.count, 50);
    assert!(s.ops.insert.samples >= 200 / s.ops.sample_every);
    // Allocator: one leaf + one value per insert, a ulog per update.
    assert!(s.alloc.allocs >= 400, "allocs = {}", s.alloc.allocs);
    assert!(s.alloc.commits >= 400);
    assert!(s.alloc.ulog_acquisitions >= 50);
    assert_eq!(s.alloc.leaf.live, 200);
    assert!(s.alloc.leaf.chunks > 0);
    assert!(s.alloc.leaf.occupancy > 0.0 && s.alloc.leaf.occupancy <= 1.0);
    // Gauges and the PM fold-in.
    assert_eq!(s.dir.shards, 1, "one 'AA' hash key → one shard");
    assert!(s.dir.buckets >= 1);
    assert!(s.pm.persist_calls > 0);
    assert!(s.pm.bytes_in_use > 0);
    // Removes retire leaf + value and are visible in the counters.
    for i in 0..200u64 {
        t.remove(&key(i)).unwrap();
    }
    let s2 = t.obs_snapshot();
    assert_eq!(s2.ops.remove.count, 200);
    assert!(s2.alloc.retires >= 400);
    assert_eq!(s2.alloc.leaf.live, 0);
    // JSON export of a live snapshot round-trips exactly.
    let back = ObsSnapshot::from_json(&s2.to_json_pretty()).unwrap();
    assert_eq!(back, s2);
}

#[test]
fn snapshot_sees_directory_growth() {
    // Small directory + many distinct hash keys forces grows + drains.
    let t = build(HartConfig {
        initial_buckets: 2,
        resize_threshold: 1,
        ..HartConfig::default()
    });
    for a in b'A'..=b'Z' {
        for b in b'A'..=b'Z' {
            let k = Key::from_str(&format!("{}{}x", a as char, b as char)).unwrap();
            t.insert(&k, &Value::from_u64(1)).unwrap();
        }
    }
    let s = t.obs_snapshot();
    assert!(s.dir.grows > 0, "grows = {}", s.dir.grows);
    assert!(s.dir.bucket_drains > 0);
    assert_eq!(s.dir.grows, t.hash_resize_count());
    assert!(s.dir.buckets > 2);
    assert_eq!(s.dir.shards, 26 * 26);
    if !s.dir.migration_in_progress {
        assert_eq!(s.dir.migrations_finished, s.dir.grows);
        assert!(s.dir.migration_ns_total > 0);
    }
}
