//! `PersistentIndex` contract tests, run generically against every index
//! in the workspace (the paper's four plus WORT): the small behavioural
//! guarantees all higher-level tests and benches implicitly rely on.

use hart_suite::{all_trees, Key, PersistentIndex, PmemPool, PoolConfig, Value, Wort};
use std::sync::Arc;

fn every_tree() -> Vec<Box<dyn PersistentIndex>> {
    let cfg = PoolConfig {
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    };
    let mut trees = all_trees(cfg.clone());
    trees.push(Box::new(
        Wort::create(Arc::new(PmemPool::new(cfg))).expect("create WORT"),
    ));
    trees
}

fn k(s: &str) -> Key {
    Key::from_str(s).unwrap()
}

#[test]
fn empty_tree_behaviour() {
    for t in every_tree() {
        let name = t.name();
        assert_eq!(t.len(), 0, "[{name}]");
        assert!(t.is_empty(), "[{name}]");
        assert_eq!(t.search(&k("missing")).unwrap(), None, "[{name}]");
        assert!(!t.remove(&k("missing")).unwrap(), "[{name}]");
        assert!(
            !t.update(&k("missing"), &Value::from_u64(1)).unwrap(),
            "[{name}]"
        );
        assert!(t.range(&k("a"), &k("z")).unwrap().is_empty(), "[{name}]");
        assert!(
            t.multi_get(&[k("a"), k("b")])
                .unwrap()
                .iter()
                .all(Option::is_none),
            "[{name}]"
        );
    }
}

#[test]
fn insert_is_upsert_everywhere() {
    for t in every_tree() {
        let name = t.name();
        t.insert(&k("dup"), &Value::from_u64(1)).unwrap();
        t.insert(&k("dup"), &Value::from_u64(2)).unwrap();
        assert_eq!(t.len(), 1, "[{name}] upsert must not grow");
        assert_eq!(
            t.search(&k("dup")).unwrap().unwrap().as_u64(),
            2,
            "[{name}]"
        );
    }
}

#[test]
fn update_only_touches_existing() {
    for t in every_tree() {
        let name = t.name();
        t.insert(&k("present"), &Value::from_u64(1)).unwrap();
        assert!(
            t.update(&k("present"), &Value::from_u64(9)).unwrap(),
            "[{name}]"
        );
        assert!(
            !t.update(&k("absent"), &Value::from_u64(9)).unwrap(),
            "[{name}]"
        );
        assert_eq!(t.len(), 1, "[{name}] update must never insert");
        assert_eq!(t.search(&k("absent")).unwrap(), None, "[{name}]");
    }
}

#[test]
fn remove_is_idempotent() {
    for t in every_tree() {
        let name = t.name();
        t.insert(&k("gone"), &Value::from_u64(1)).unwrap();
        assert!(t.remove(&k("gone")).unwrap(), "[{name}]");
        assert!(!t.remove(&k("gone")).unwrap(), "[{name}] double remove");
        assert_eq!(t.len(), 0, "[{name}]");
    }
}

#[test]
fn range_bounds_are_inclusive_and_ordered() {
    for t in every_tree() {
        let name = t.name();
        for key in ["a", "b", "c", "d"] {
            t.insert(&k(key), &Value::from_u64(key.len() as u64))
                .unwrap();
        }
        let got: Vec<String> = t
            .range(&k("b"), &k("c"))
            .unwrap()
            .iter()
            .map(|(key, _)| key.to_string())
            .collect();
        assert_eq!(got, vec!["b", "c"], "[{name}] inclusive bounds");
        // Inverted range is empty, not an error.
        assert!(t.range(&k("c"), &k("b")).unwrap().is_empty(), "[{name}]");
        // Full span is sorted.
        let all = t.range(&k("a"), &k("d")).unwrap();
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "[{name}]");
        assert_eq!(all.len(), 4, "[{name}]");
    }
}

#[test]
fn extreme_keys_and_values() {
    for t in every_tree() {
        let name = t.name();
        // 1-byte and 24-byte keys; empty and 16-byte values.
        let tiny = Key::new(b"x").unwrap();
        let huge = Key::new(&[b'q'; 24]).unwrap();
        t.insert(&tiny, &Value::new(b"").unwrap()).unwrap();
        t.insert(&huge, &Value::new(&[0xAB; 16]).unwrap()).unwrap();
        assert_eq!(t.search(&tiny).unwrap().unwrap().len(), 0, "[{name}]");
        assert_eq!(
            t.search(&huge).unwrap().unwrap().as_slice(),
            &[0xAB; 16],
            "[{name}]"
        );
        // Binary (non-ASCII) key bytes.
        let bin = Key::new(&[0x01, 0xFF, 0x80, 0x7F]).unwrap();
        t.insert(&bin, &Value::from_u64(7)).unwrap();
        assert_eq!(t.search(&bin).unwrap().unwrap().as_u64(), 7, "[{name}]");
    }
}

#[test]
fn keys_sharing_every_prefix_length() {
    // a, aa, aaa, ... up to 24 — the worst case for path compression and
    // terminator handling in every radix variant and for FPTree's
    // fingerprints.
    for t in every_tree() {
        let name = t.name();
        let keys: Vec<Key> = (1..=24)
            .map(|n| Key::new(&vec![b'a'; n]).unwrap())
            .collect();
        for (i, key) in keys.iter().enumerate() {
            t.insert(key, &Value::from_u64(i as u64)).unwrap();
        }
        assert_eq!(t.len(), 24, "[{name}]");
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                t.search(key).unwrap().unwrap().as_u64(),
                i as u64,
                "[{name}] len {}",
                i + 1
            );
        }
        // Remove the middle ones; endpoints must survive.
        for key in &keys[8..16] {
            assert!(t.remove(key).unwrap(), "[{name}]");
        }
        assert!(t.search(&keys[0]).unwrap().is_some(), "[{name}]");
        assert!(t.search(&keys[23]).unwrap().is_some(), "[{name}]");
        assert!(t.search(&keys[12]).unwrap().is_none(), "[{name}]");
    }
}

#[test]
fn interleaved_ops_keep_len_exact() {
    for t in every_tree() {
        let name = t.name();
        let mut expected = 0usize;
        for i in 0..300u64 {
            let key = Key::from_u64_base62(i % 100, 6);
            match i % 3 {
                0 => {
                    let existed = t.search(&key).unwrap().is_some();
                    t.insert(&key, &Value::from_u64(i)).unwrap();
                    if !existed {
                        expected += 1;
                    }
                }
                1 => {
                    let _ = t.update(&key, &Value::from_u64(i)).unwrap();
                }
                _ => {
                    if t.remove(&key).unwrap() {
                        expected -= 1;
                    }
                }
            }
            assert_eq!(t.len(), expected, "[{name}] at step {i}");
        }
    }
}
