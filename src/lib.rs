//! # hart-suite — a reproduction of HART (IPDPS 2019)
//!
//! Umbrella crate for the workspace reproducing *"HART: A Concurrent
//! Hash-Assisted Radix Tree for DRAM-PM Hybrid Memory Systems"* (Pan, Xie
//! & Song, IPDPS 2019). It re-exports every layer so examples and
//! integration tests can `use hart_suite::*`:
//!
//! * [`pm`] — persistent-memory emulation (pool, persist, latency model,
//!   crash simulation);
//! * [`epalloc`] — EPallocator, HART's chunked persistent allocator;
//! * [`art`] — the volatile adaptive radix tree (DRAM internal nodes);
//! * [`hart`] — HART itself;
//! * [`obs`] — the always-on observability layer (sharded counters, log₂
//!   histograms, JSON/Prometheus snapshots);
//! * [`woart`], [`artcow`], [`fptree`] — the paper's three baselines;
//! * [`workloads`] — Dictionary / Sequential / Random / YCSB generators.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use hart_art as art;
pub use hart_artcow as artcow;
pub use hart_epalloc as epalloc;
pub use hart_fptree as fptree;
pub use hart_kv as kv;
pub use hart_obs as obs;
pub use hart_pm as pm;
pub use hart_server as server;
pub use hart_woart as woart;
pub use hart_workloads as workloads;
pub use hart_wort as wort;

pub use hart::{Hart, HartConfig};
pub use hart_artcow::ArtCow;
pub use hart_fptree::FpTree;
pub use hart_kv::{Error, Key, MemoryStats, PersistentIndex, Result, Value};
pub use hart_obs::{Instrumented, ObsSnapshot, Observable};
pub use hart_pm::{GroupCommitter, GroupConfig, LatencyConfig, PmemPool, PoolConfig, TimeMode};
pub use hart_woart::Woart;
pub use hart_wort::Wort;

use std::sync::Arc;

/// Build each of the four evaluated trees over a fresh pool with the same
/// configuration — convenience for tests and examples that compare them.
pub fn all_trees(cfg: PoolConfig) -> Vec<Box<dyn PersistentIndex>> {
    vec![
        Box::new(
            Hart::create(Arc::new(PmemPool::new(cfg.clone())), HartConfig::default())
                .expect("create HART"),
        ),
        Box::new(Woart::create(Arc::new(PmemPool::new(cfg.clone()))).expect("create WOART")),
        Box::new(ArtCow::create(Arc::new(PmemPool::new(cfg.clone()))).expect("create ART+CoW")),
        Box::new(FpTree::create(Arc::new(PmemPool::new(cfg))).expect("create FPTree")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_trees_builds_four() {
        let trees = all_trees(PoolConfig::test_small());
        let names: Vec<&str> = trees.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["HART", "WOART", "ART+CoW", "FPTree"]);
    }
}
