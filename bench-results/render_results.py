#!/usr/bin/env python3
"""Render bench-results/*.csv into the RESULTS section of EXPERIMENTS.md.

Usage: python3 bench-results/render_results.py >> EXPERIMENTS.md
(Idempotence is the caller's job: run once against the run of record.)
"""
import csv
import os
import sys

DIR = os.path.dirname(os.path.abspath(__file__))

ORDER = [
    ("fig4", "Fig. 4 — insertion, avg µs/record"),
    ("fig5", "Fig. 5 — search, avg µs/record"),
    ("fig6", "Fig. 6 — update, avg µs/record"),
    ("fig7", "Fig. 7 — deletion, avg µs/record"),
    ("fig8", "Fig. 8 — scaling, total seconds (Random @ 300/100)"),
    ("fig9", "Fig. 9 — YCSB mixes, avg µs/op"),
    ("fig10a", "Fig. 10a — range query, avg µs/record"),
    ("fig10b", "Fig. 10b — memory consumption, MiB"),
    ("fig10c", "Fig. 10c — build vs recovery, seconds"),
    ("fig10d", "Fig. 10d — HART scaling, MIOPS"),
    ("summary", "§I headline — best-case HART speedups (×)"),
    ("extras", "Extras — radix family incl. WORT, avg µs/record"),
    ("tail", "Tail — per-op percentiles, µs (Random @ 300/300)"),
    ("profile", "Profile — PM events per op (modeled, Random @ 300/300)"),
]


def table(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    if not rows:
        return "(empty)"
    out = ["| " + " | ".join(rows[0]) + " |"]
    out.append("|" + "---|" * len(rows[0]))
    for r in rows[1:]:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out)


def main():
    for name, title in ORDER:
        path = os.path.join(DIR, f"{name}.csv")
        if not os.path.exists(path):
            print(f"<!-- {name}.csv missing -->", file=sys.stderr)
            continue
        print(f"\n## RESULTS:{name} — {title}\n")
        print(table(path))


if __name__ == "__main__":
    main()
